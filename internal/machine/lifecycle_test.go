package machine

import (
	"sync"
	"syscall"
	"testing"
	"time"

	"ap1000plus/internal/fault"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/topology"
)

// TestDrainIdleCPUQuiet pins the park/wake drain: a goroutine blocked
// in the partition quiesce wait must burn (almost) no CPU while the
// counter is nonzero. The old implementation spun on runtime.Gosched,
// which pegged a core for the whole wait.
func TestDrainIdleCPUQuiet(t *testing.T) {
	m := newMachine(t, Config{})
	p := m.parts[0]
	p.q.add(1)
	done := make(chan struct{})
	go func() {
		p.q.wait()
		close(done)
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park

	cpu := func() time.Duration {
		var ru syscall.Rusage
		if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
			t.Fatal(err)
		}
		return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
	}
	const window = 200 * time.Millisecond
	before := cpu()
	time.Sleep(window)
	used := cpu() - before
	// A busy-spin burns the full window on at least one core; a parked
	// waiter burns microseconds. Allow generous slack for the test
	// runtime itself.
	if used > window/2 {
		t.Errorf("drain wait burned %v CPU over a %v idle window", used, window)
	}

	p.q.add(-1)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter did not wake after counter hit zero")
	}
}

// ringSegs allocates one source and one destination buffer per cell.
// Allocation happens once per machine, before any job, so repeated
// jobs see identical addresses.
type ringSegs struct {
	src, dst   []*mem.Segment
	srcD, dstD [][]float64
}

func allocRingSegs(t *testing.T, m *Machine) *ringSegs {
	t.Helper()
	n := m.Cells()
	rs := &ringSegs{
		src: make([]*mem.Segment, n), dst: make([]*mem.Segment, n),
		srcD: make([][]float64, n), dstD: make([][]float64, n),
	}
	for id := 0; id < n; id++ {
		c := m.Cell(topology.CellID(id))
		var err error
		if rs.src[id], rs.srcD[id], err = c.AllocFloat64("ring-src", 8); err != nil {
			t.Fatal(err)
		}
		if rs.dst[id], rs.dstD[id], err = c.AllocFloat64("ring-dst", 8); err != nil {
			t.Fatal(err)
		}
	}
	return rs
}

// runRingJob runs one all-cells ring-PUT job: every cell fills its
// source buffer with fill+rank, PUTs it to the right neighbor's
// destination buffer, and waits for both flags. Flag IDs are allocated
// inside the job, so after a job reset every cell deterministically
// gets recv=1, send=2. Returns a snapshot of the received data and the
// per-cell flag-increment counts.
func runRingJob(t *testing.T, m *Machine, rs *ringSegs, fill float64) (data [][]float64, incs []int64) {
	t.Helper()
	n := m.Cells()
	err := m.Run(func(c *Cell) error {
		id := int(c.ID())
		rf := c.Flags.Alloc() // deterministically 1 on every cell
		sf := c.Flags.Alloc() // deterministically 2
		for i := range rs.srcD[id] {
			rs.srcD[id][i] = fill + float64(id) + float64(i)/16
		}
		right := (id + 1) % n
		c.PushUser(msc.Command{
			Op: msc.OpPut, Dst: topology.CellID(right),
			RAddr: rs.dst[right].Base(), LAddr: rs.src[id].Base(),
			RStride: mem.Contiguous(64), LStride: mem.Contiguous(64),
			SendFlag: sf, RecvFlag: mc.FlagID(1), // neighbor's recv flag
		})
		c.Flags.Wait(sf, 1)
		c.Flags.Wait(rf, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	data = make([][]float64, n)
	incs = make([]int64, n)
	for id := 0; id < n; id++ {
		data[id] = append([]float64(nil), rs.dstD[id]...)
		incs[id] = m.Cell(topology.CellID(id)).Flags.Increments()
	}
	return data, incs
}

func diffRuns(t *testing.T, label string, gotD, wantD [][]float64, gotI, wantI []int64) {
	t.Helper()
	for id := range wantD {
		for i := range wantD[id] {
			if gotD[id][i] != wantD[id][i] {
				t.Errorf("%s: cell %d data[%d] = %v, want %v", label, id, i, gotD[id][i], wantD[id][i])
			}
		}
		if gotI[id] != wantI[id] {
			t.Errorf("%s: cell %d flag increments = %d, want %d", label, id, gotI[id], wantI[id])
		}
	}
}

// TestSequentialRunBitIdentical pins the restartable-machine contract:
// two back-to-back jobs on one machine produce results bit-identical
// to two fresh machines each running one job. Job-scoped state (flags,
// cregs, loads) resets between jobs; memory and allocator state
// persist, which the shared pre-allocated segments make visible.
func TestSequentialRunBitIdentical(t *testing.T) {
	cfg := Config{}
	m := newMachine(t, cfg)
	rs := allocRingSegs(t, m)
	seq1D, seq1I := runRingJob(t, m, rs, 3)
	seq2D, seq2I := runRingJob(t, m, rs, 5)

	mA := newMachine(t, cfg)
	rsA := allocRingSegs(t, mA)
	oneD, oneI := runRingJob(t, mA, rsA, 3)
	mB := newMachine(t, cfg)
	rsB := allocRingSegs(t, mB)
	twoD, twoI := runRingJob(t, mB, rsB, 5)

	diffRuns(t, "job 1", seq1D, oneD, seq1I, oneI)
	diffRuns(t, "job 2", seq2D, twoD, seq2I, twoI)
}

// TestSequentialRunBitIdenticalUnderFault is the same pin under a
// seeded fault plan: fates are a pure function of (seed, stream,
// index), and job reset restarts every stream, so a reused machine
// replays exactly the fate sequence a fresh machine sees.
func TestSequentialRunBitIdenticalUnderFault(t *testing.T) {
	plan, err := fault.Parse("drop=0.05,dup=0.03,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Fault: plan}
	m := newMachine(t, cfg)
	rs := allocRingSegs(t, m)
	seq1D, seq1I := runRingJob(t, m, rs, 3)
	seq2D, seq2I := runRingJob(t, m, rs, 5)

	mA := newMachine(t, Config{Fault: plan.Clone()})
	rsA := allocRingSegs(t, mA)
	oneD, oneI := runRingJob(t, mA, rsA, 3)
	mB := newMachine(t, Config{Fault: plan.Clone()})
	rsB := allocRingSegs(t, mB)
	twoD, twoI := runRingJob(t, mB, rsB, 5)

	diffRuns(t, "fault job 1", seq1D, oneD, seq1I, oneI)
	diffRuns(t, "fault job 2", seq2D, twoD, seq2I, twoI)
}

// TestConcurrentPartitionJobs gangs four jobs onto four partitions of
// a 4x4 machine at once: each partition runs its own ring of PUTs and
// its own hardware barrier. Every partition's data must come out
// right, and each barrier domain must have completed exactly once —
// proof the S-net domains are independent.
func TestConcurrentPartitionJobs(t *testing.T) {
	m := newMachine(t, Config{Width: 4, Height: 4, Partitions: 4})
	rs := allocRingSegs(t, m)
	if err := m.Open(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, m.Partitions())
	for part := 0; part < m.Partitions(); part++ {
		p := m.Partition(part)
		base, size, fill := p.base, p.n, float64(100*(part+1))
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			errs[part] = m.RunJob(part, func(c *Cell) error {
				id := int(c.ID())
				rank := id - base
				rf := c.Flags.Alloc()
				sf := c.Flags.Alloc()
				for i := range rs.srcD[id] {
					rs.srcD[id][i] = fill + float64(rank)
				}
				right := base + (rank+1)%size // stay inside the partition
				c.PushUser(msc.Command{
					Op: msc.OpPut, Dst: topology.CellID(right),
					RAddr: rs.dst[right].Base(), LAddr: rs.src[id].Base(),
					RStride: mem.Contiguous(64), LStride: mem.Contiguous(64),
					SendFlag: sf, RecvFlag: mc.FlagID(1),
				})
				c.Flags.Wait(sf, 1)
				c.Flags.Wait(rf, 1)
				c.HWBarrier()
				return nil
			})
		}(part)
	}
	wg.Wait()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	for part, err := range errs {
		if err != nil {
			t.Fatalf("partition %d: %v", part, err)
		}
	}
	for part := 0; part < m.Partitions(); part++ {
		p := m.Partition(part)
		for rank := 0; rank < p.n; rank++ {
			id := p.base + rank
			left := (rank + p.n - 1) % p.n
			want := float64(100*(part+1)) + float64(left)
			for i, v := range rs.dstD[id] {
				if v != want {
					t.Errorf("partition %d cell %d dst[%d] = %v, want %v", part, id, i, v, want)
				}
			}
		}
		if got := m.snet.Domain(part).Count(); got != 1 {
			t.Errorf("partition %d barrier-domain count = %d, want 1", part, got)
		}
		if got := p.Jobs(); got != 1 {
			t.Errorf("partition %d jobs = %d, want 1", part, got)
		}
	}
}

// TestRunJobErrors pins the scheduler-facing error surface: bad
// partition index, RunJob before Open, and a double-booked partition.
func TestRunJobErrors(t *testing.T) {
	m := newMachine(t, Config{Partitions: 2})
	if err := m.RunJob(0, func(c *Cell) error { return nil }); err == nil {
		t.Fatal("RunJob before Open must fail")
	}
	if err := m.Open(); err != nil {
		t.Fatal(err)
	}
	if err := m.RunJob(5, func(c *Cell) error { return nil }); err == nil {
		t.Fatal("out-of-range partition must fail")
	}
	// Double-book partition 0: hold a job open with a flag wait, then
	// try to start a second.
	started := make(chan struct{})
	release := make(chan struct{})
	jobErr := make(chan error, 1)
	go func() {
		jobErr <- m.RunJob(0, func(c *Cell) error {
			if c.ID() == 0 {
				close(started)
				<-release
			}
			return nil
		})
	}()
	<-started
	if err := m.RunJob(0, func(c *Cell) error { return nil }); err == nil {
		t.Error("double-booked partition must fail")
	}
	close(release)
	if err := <-jobErr; err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.RunJob(1, func(c *Cell) error { return nil }); err == nil {
		t.Fatal("RunJob after Close must fail")
	}
}

// TestPartitionConfigValidation pins the Config.fill rules around
// partitioning.
func TestPartitionConfigValidation(t *testing.T) {
	if _, err := New(Config{Width: 2, Height: 2, MemoryPerCell: 1 << 20, Partitions: -1}); err == nil {
		t.Error("negative partition count must fail")
	}
	if _, err := New(Config{Width: 2, Height: 2, MemoryPerCell: 1 << 20, Partitions: 2, Sanitize: true}); err == nil {
		t.Error("sanitize with multiple partitions must fail")
	}
	if _, err := New(Config{Width: 4, Height: 4, MemoryPerCell: 1 << 20, Partitions: 2, Combining: true}); err == nil {
		t.Error("combining with multiple partitions must fail")
	}
	m, err := New(Config{Width: 4, Height: 2, MemoryPerCell: 1 << 20, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Partitions() != 4 {
		t.Fatalf("partitions = %d", m.Partitions())
	}
	seen := map[int]int{}
	for id := 0; id < m.Cells(); id++ {
		seen[m.PartitionOf(topology.CellID(id))]++
	}
	for part, n := range seen {
		if n != 2 {
			t.Errorf("partition %d has %d cells, want 2", part, n)
		}
	}
	for i := 0; i < 4; i++ {
		if got := m.Partition(i).Size(); got != 2 {
			t.Errorf("Partition(%d).Size() = %d", i, got)
		}
	}
}
