//go:build !race

package machine_test

// raceDetectorEnabled: see race_on_test.go.
const raceDetectorEnabled = false
