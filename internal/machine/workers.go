package machine

import (
	"sync"
	"sync/atomic"

	"ap1000plus/internal/msc"
	"ap1000plus/internal/topology"
)

// ringLinkCap is the fast-path depth of each inter-shard wire link, in
// packets. Like the MSC+ queue ring it models a small on-chip FIFO:
// bursts past it spill to the link's overflow heap rather than
// blocking the producer.
const ringLinkCap = 256

// workerPool is the sharded delivery engine behind the ring wire. Each
// cell is pinned to the worker numbered id mod W, which is the single
// consumer of that cell's MSC+ command rings and of the wire links
// addressed to its shard — the consumer half of every SPSC pair. The
// per-cell blocking controller goroutines of the mutex wire are
// replaced by these W loops, so a 4096-cell machine runs on a few
// workers instead of 4096 parked receivers.
type workerPool struct {
	m       *Machine
	workers []*worker
}

type worker struct {
	m     *Machine
	shard int

	mu     sync.Mutex
	cond   *sync.Cond
	active []topology.CellID // cells with a rung doorbell, in ring order
	spare  []topology.CellID // swap buffer so draining never holds mu
	parked bool
	closed bool

	// inboxKick is the wire's doorbell: a producing shard sets it after
	// enqueueing onto one of this shard's links. Checked lock-free at
	// the top of every loop pass and before parking.
	inboxKick atomic.Bool
}

func newWorkerPool(m *Machine, shards int) *workerPool {
	p := &workerPool{m: m, workers: make([]*worker, shards)}
	for i := range p.workers {
		w := &worker{m: m, shard: i}
		w.cond = sync.NewCond(&w.mu)
		p.workers[i] = w
	}
	return p
}

func (p *workerPool) shards() int { return len(p.workers) }

// wake is the tnet wire's cross-shard doorbell (SetRingWire callback).
// The fast path is one atomic load; the lock is taken only to catch a
// parked worker.
func (p *workerPool) wake(shard int) {
	w := p.workers[shard]
	if w.inboxKick.Load() {
		return // doorbell already rung and not yet consumed
	}
	w.inboxKick.Store(true)
	w.mu.Lock()
	if w.parked {
		w.cond.Signal()
	}
	w.mu.Unlock()
}

func (p *workerPool) start(wg *sync.WaitGroup) {
	for _, w := range p.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run()
		}(w)
	}
}

func (p *workerPool) close() {
	for _, w := range p.workers {
		w.mu.Lock()
		w.closed = true
		w.cond.Broadcast()
		w.mu.Unlock()
	}
}

// reopen rearms a closed pool so Open can start a fresh set of worker
// goroutines. Only legal after close and the workers' exit: the
// doorbells are necessarily quiet by then.
func (p *workerPool) reopen() {
	for _, w := range p.workers {
		w.mu.Lock()
		w.closed = false
		w.parked = false
		w.mu.Unlock()
	}
}

// notifyCell is the MSC+ doorbell: a producer pushed a command into
// c's rings. The dirty bit collapses any number of pushes into one
// activation; the worker clears it before draining, so a push that
// races the drain either lands in the ring in time or re-rings the
// bell.
func (m *Machine) notifyCell(c *Cell) {
	if c.dirty.Load() || !c.dirty.CompareAndSwap(false, true) {
		return // already scheduled
	}
	w := m.pool.workers[c.shard]
	w.mu.Lock()
	w.active = append(w.active, c.id)
	if w.parked {
		w.cond.Signal()
	}
	w.mu.Unlock()
}

// run is one delivery worker's loop: drain the shard's wire inbox,
// swap out the doorbell list, drain each rung cell's command rings,
// and park only when both doorbells are quiet.
func (w *worker) run() {
	m := w.m
	for {
		did := 0
		if w.inboxKick.Load() {
			// Clear before draining: packets enqueued after the clear
			// re-ring the bell, packets enqueued before it are caught by
			// this drain.
			w.inboxKick.Store(false)
			did += m.tnet.DrainInbox(w.shard, 0)
		}

		w.mu.Lock()
		batch := w.active
		w.active = w.spare[:0]
		closed := w.closed
		w.mu.Unlock()
		for _, id := range batch {
			did += m.drainCell(m.cells[id])
		}
		w.spare = batch // recycle the slice for the next swap

		if did > 0 {
			continue
		}
		if closed && w.quiet() {
			return
		}
		w.mu.Lock()
		for !w.closed && len(w.active) == 0 && !w.inboxKick.Load() {
			w.parked = true
			w.cond.Wait()
			w.parked = false
		}
		w.mu.Unlock()
	}
}

// quiet reports whether both doorbells are idle; only then may a
// closed worker exit.
func (w *worker) quiet() bool {
	if w.inboxKick.Load() {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.active) == 0
}

// drainCell pops and executes c's pending commands. The dirty bit is
// cleared first, so producers racing this drain re-ring the doorbell;
// the post-drain Pending check catches commands that slipped in
// between the last pop and the clear-side race window closing.
func (m *Machine) drainCell(c *Cell) int {
	c.dirty.Store(false)
	var buf [drainBatch]msc.Command
	done := 0
	for done < 4*drainBatch { // bounded pass: round-robin fairness
		n := c.MSC.TryNextBatch(buf[:])
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			m.process(c, buf[i])
		}
		// Uncount after the whole batch processed; see controller.
		c.part.q.add(-int64(n))
		done += n
	}
	if c.MSC.Pending() > 0 {
		m.notifyCell(c) // left work behind (bound hit or racing push)
	}
	return done
}
