package machine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"ap1000plus/internal/fault"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/obs"
	"ap1000plus/internal/tnet"
	"ap1000plus/internal/topology"
)

// CellFault reports a transfer the MSC+ abandoned after exhausting its
// reliable-delivery retry budget: the unrecoverable end of graceful
// degradation under a fault plan. It lands in the source cell's OS
// fault log and is surfaced machine-wide through Machine.FaultErr.
type CellFault struct {
	Cell     topology.CellID // the cell that gave up
	Dst      topology.CellID
	Op       msc.Op
	Seq      uint64
	Attempts int
}

func (f *CellFault) Error() string {
	return fmt.Sprintf("machine: cell %d: %s to cell %d (seq %d) undeliverable after %d attempts",
		f.Cell, f.Op, f.Dst, f.Seq, f.Attempts)
}

// Unwrap ties every retry-budget exhaustion to the ErrRetryBudget
// sentinel, so callers test errors.Is(err, ErrRetryBudget) instead of
// matching the message.
func (f *CellFault) Unwrap() error { return ErrRetryBudget }

// relay is the machine's reliable-delivery layer, active only when the
// machine was built with a fault plan. It gives every T-net packet a
// per-link sequence number and an end-to-end checksum, retransmits on
// rejected delivery with simulated exponential backoff, and dedups on
// the receive side so retried or duplicated packets take effect
// exactly once (the MC's flag fetch-and-increment must not double
// fire). A nil *relay is the off state: Seq and Sum stay zero and the
// wire is trusted, exactly the pre-fault machine.
type relay struct {
	m     *Machine
	inj   *fault.Injector
	cells int
	links []relLink // [src*cells+dst]

	mu     sync.Mutex
	faults []error
}

// atomicReplayWindow bounds the per-link result-replay cache: the
// fetch results of the last atomicReplayWindow executed atomic
// requests on the link. Duplicates older than the window lose their
// cached result (the replay degrades to a bare ack), so the cache can
// never grow with the run length.
const atomicReplayWindow = 128

// relLink is one directed (src, dst) link's reliable-delivery state:
// the sender-side sequence counter and the receiver-side dedup window.
// Several controller goroutines can transmit on one link (a cell's own
// commands, its GET replies, remote-store acks executing on other
// controllers), so both sides are under the link mutex.
type relLink struct {
	mu      sync.Mutex
	nextSeq uint64
	// contig is the receive watermark: every seq <= contig has been
	// accepted. seen holds accepted seqs above the watermark (holes
	// from reordering), collapsed back into contig as they fill.
	contig uint64
	seen   map[uint64]bool
	// abandoned holds sender-side sequence numbers whose retry budget
	// was exhausted. An abandoned seq may never arrive, which would
	// leave a permanent hole under the receive watermark and let seen
	// grow without bound; the machine's drain reconciles these holes
	// (see relay.reconcile). Entries are dropped when the packet lands
	// late after all (a limbo copy flushed at drain).
	abandoned map[uint64]bool
	// results is the atomic result-replay cache: fetch results of
	// executed OpAtomic requests keyed by seq, bounded to the last
	// atomicReplayWindow entries FIFO. A duplicated fetch-add must
	// return the cached old value instead of re-executing — unlike the
	// idempotent flag increments, a replayed RMW is observable.
	results    map[uint64]int64
	resultFifo [atomicReplayWindow]uint64
	resultPos  int
}

// see records seq as received and reports whether it was a duplicate.
func (l *relLink) see(seq uint64) (dup bool) {
	if seq <= l.contig || l.seen[seq] {
		return true
	}
	delete(l.abandoned, seq) // landed after all (late limbo delivery)
	if seq == l.contig+1 {
		l.contig++
		for l.seen[l.contig+1] {
			delete(l.seen, l.contig+1)
			l.contig++
		}
		return false
	}
	if l.seen == nil {
		l.seen = make(map[uint64]bool)
	}
	l.seen[seq] = true
	return false
}

// cacheResult records the fetch result of an executed atomic request,
// evicting the oldest cached result once the window is full.
func (l *relLink) cacheResult(seq uint64, val int64) {
	if l.results == nil {
		l.results = make(map[uint64]int64, atomicReplayWindow)
	}
	if old := l.resultFifo[l.resultPos]; old != 0 {
		delete(l.results, old)
	}
	l.resultFifo[l.resultPos] = seq
	l.resultPos = (l.resultPos + 1) % atomicReplayWindow
	l.results[seq] = val
}

// abandon marks a sender-side seq as permanently undeliverable.
func (r *relay) abandon(src, dst topology.CellID, seq uint64) {
	link := &r.links[int(src)*r.cells+int(dst)]
	link.mu.Lock()
	if seq > link.contig && !link.seen[seq] {
		if link.abandoned == nil {
			link.abandoned = make(map[uint64]bool)
		}
		link.abandoned[seq] = true
	}
	link.mu.Unlock()
}

// cachedResult looks up the replay cache for a duplicated atomic
// request on the (src, dst) link.
func (r *relay) cachedResult(src, dst topology.CellID, seq uint64) (int64, bool) {
	link := &r.links[int(src)*r.cells+int(dst)]
	link.mu.Lock()
	v, ok := link.results[seq]
	link.mu.Unlock()
	return v, ok
}

// noteResult stores an executed atomic's fetch result in the (src,
// dst) link's replay cache.
func (r *relay) noteResult(src, dst topology.CellID, seq uint64, val int64) {
	link := &r.links[int(src)*r.cells+int(dst)]
	link.mu.Lock()
	link.cacheResult(seq, val)
	link.mu.Unlock()
}

// reconcile runs once the machine is quiescent (inflight drained,
// limbo flushed): every abandoned seq that still never arrived is
// marked received so the holes it left collapse and the dedup windows
// drain to empty. Without this, a retry-budget exhaustion under a
// sustained reorder plan grows seen without bound for the rest of the
// run.
func (r *relay) reconcile() { r.reconcileRange(0, r.cells) }

// reconcileRange is reconcile scoped to links whose source cell lies
// in [lo, hi) — one partition's drain, which must not touch a
// neighbor partition's links while that neighbor is mid-job. Links to
// destinations outside the range are scanned too, but under partition
// isolation they never carried traffic and are empty.
func (r *relay) reconcileRange(lo, hi int) {
	for src := lo; src < hi; src++ {
		for dst := 0; dst < r.cells; dst++ {
			l := &r.links[src*r.cells+dst]
			l.mu.Lock()
			for len(l.abandoned) > 0 {
				// Marking one abandoned seq may collapse others; loop until
				// the set is empty (see deletes entries as they land).
				for seq := range l.abandoned {
					delete(l.abandoned, seq)
					l.see(seq)
					break
				}
			}
			l.mu.Unlock()
		}
	}
}

func newRelay(m *Machine, inj *fault.Injector) *relay {
	cells := m.torus.Cells()
	return &relay{m: m, inj: inj, cells: cells, links: make([]relLink, cells*cells)}
}

// packetSum is the end-to-end checksum the MSC+ stamps into Sum at
// transmit and verifies on receive: FNV-1a over the header words that
// route and apply the packet, extended with the payload hash. The Sum
// field itself is excluded (it is the digest).
func packetSum(h msc.Command, payload *mem.Payload) uint64 {
	const prime = 1099511628211
	s := payload.Sum64()
	for _, w := range [...]uint64{
		uint64(h.Op), uint64(h.Src), uint64(h.Dst),
		uint64(h.RAddr), uint64(h.LAddr),
		uint64(h.RStride.ItemSize), uint64(h.RStride.Count), uint64(h.RStride.Skip),
		uint64(h.LStride.ItemSize), uint64(h.LStride.Count), uint64(h.LStride.Skip),
		uint64(h.SendFlag), uint64(h.RecvFlag),
		uint64(h.Port), uint64(h.Tag), h.Seq,
		b2u64(h.CacheFill),
		uint64(h.AOp), uint64(h.AVal), uint64(h.ACmp),
	} {
		for i := 0; i < 64; i += 8 {
			s = (s ^ (w >> i & 0xff)) * prime
		}
	}
	return s
}

func b2u64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// xmit routes a packet out of cell c. Without a fault plan it is a
// plain tnet.Send; with one, the relay stamps the reliable-delivery
// header and retries rejected deliveries up to the budget, charging
// simulated backoff to c's counters. It reports whether the packet was
// eventually accepted.
func (m *Machine) xmit(c *Cell, p tnet.Packet) bool {
	r := m.rel
	if r == nil {
		return m.tnet.Send(p)
	}
	link := &r.links[int(p.Head.Src)*r.cells+int(p.Head.Dst)]
	link.mu.Lock()
	link.nextSeq++
	p.Head.Seq = link.nextSeq
	link.mu.Unlock()
	p.Head.Sum = packetSum(p.Head, p.Payload)

	var cc *obs.CellCounters
	var tl *obs.Timeline
	o := m.obs
	if o != nil {
		cc = o.Cell(int(c.id))
		tl = o.Timeline()
	}
	max := r.inj.MaxAttempts()
	for attempt := 1; attempt <= max; attempt++ {
		if attempt > 1 {
			// Ack timeout: charge the exponential backoff as simulated
			// time (the functional machine is untimed, so the modeled
			// delay is a counter, not a sleep).
			if cc != nil {
				cc.Retransmits.Add(1)
				cc.BackoffNanos.Add(r.inj.Backoff(attempt - 1))
				if tl != nil {
					tl.Instant(int(c.id), obs.TidMSC, "fault", "retransmit", o.NowUs())
				}
			}
			if attempt == 2 {
				// First retry: just yield — a single fault is overwhelmingly
				// the common case, and a sleep here would slow chaos suites.
				runtime.Gosched()
			} else {
				// Repeated faults on one packet (probability ~rate² and
				// beyond): real bounded exponential backoff. A Gosched loop
				// here busy-spins a full core per retransmit storm — fatal
				// when one host gang-schedules many tenant machines.
				d := time.Duration(1<<uint(attempt-3)) * time.Microsecond
				if d > 50*time.Microsecond {
					d = 50 * time.Microsecond
				}
				time.Sleep(d)
			}
		}
		if m.tnet.Send(p) {
			return true
		}
	}
	cf := &CellFault{Cell: c.id, Dst: p.Head.Dst, Op: p.Head.Op, Seq: p.Head.Seq, Attempts: max}
	r.abandon(p.Head.Src, p.Head.Dst, p.Head.Seq)
	r.record(cf)
	c.OS.interrupt(IntrCellFault)
	c.OS.fault(cf)
	if cc != nil {
		cc.CellFaults.Add(1)
		if tl != nil {
			tl.Instant(int(c.id), obs.TidMSC, "fault", "cell-fault", o.NowUs())
		}
	}
	return false
}

// admitVerdict classifies an arriving packet at the receive controller.
type admitVerdict uint8

const (
	admitFresh  admitVerdict = iota // process normally
	admitDup                        // already applied: ack, do nothing
	admitReject                     // damaged: drop, force retransmit
)

// admit runs the receive-side reliable-delivery checks on cell c:
// checksum first (a damaged packet must not touch the dedup window),
// then the per-link sequence dedup.
func (r *relay) admit(c *Cell, p tnet.Packet) admitVerdict {
	o := r.m.obs
	if p.Head.Sum != packetSum(p.Head, p.Payload) {
		if o != nil {
			o.Cell(int(c.id)).CorruptDetected.Add(1)
			if tl := o.Timeline(); tl != nil {
				tl.Instant(int(c.id), obs.TidMSC, "fault", "corrupt-drop", o.NowUs())
			}
		}
		return admitReject
	}
	link := &r.links[int(p.Head.Src)*r.cells+int(p.Head.Dst)]
	link.mu.Lock()
	dup := link.see(p.Head.Seq)
	link.mu.Unlock()
	if dup {
		if o != nil {
			o.Cell(int(c.id)).Dedups.Add(1)
			if tl := o.Timeline(); tl != nil {
				tl.Instant(int(c.id), obs.TidMSC, "fault", "dedup", o.NowUs())
			}
		}
		return admitDup
	}
	return admitFresh
}

func (r *relay) record(err error) {
	r.mu.Lock()
	r.faults = append(r.faults, err)
	r.mu.Unlock()
}

// broadcastFault records n failed B-net snoops of a broadcast
// originated by c (cells whose bus-level retries all failed).
func (m *Machine) broadcastFault(c *Cell, n int) {
	r := m.rel
	if r == nil || n == 0 {
		return
	}
	err := fmt.Errorf("machine: cell %d: broadcast undeliverable to %d cells after %d attempts",
		c.id, n, r.inj.MaxAttempts())
	r.record(err)
	c.OS.interrupt(IntrCellFault)
	c.OS.fault(err)
	if o := m.obs; o != nil {
		o.Cell(int(c.id)).CellFaults.Add(int64(n))
		if tl := o.Timeline(); tl != nil {
			tl.Instant(int(c.id), obs.TidMSC, "fault", "cell-fault", o.NowUs())
		}
	}
}

// FaultErr reports the first transfer abandoned under the fault plan's
// retry budget, or nil when the machine ran without a plan or every
// transfer was eventually delivered. Check it after Run, like
// SanitizeErr.
func (m *Machine) FaultErr() error {
	if m.rel == nil {
		return nil
	}
	m.rel.mu.Lock()
	defer m.rel.mu.Unlock()
	if len(m.rel.faults) == 0 {
		return nil
	}
	return m.rel.faults[0]
}

// CellFaultErrs returns a copy of every retry-budget exhaustion
// recorded under the fault plan.
func (m *Machine) CellFaultErrs() []error {
	if m.rel == nil {
		return nil
	}
	m.rel.mu.Lock()
	defer m.rel.mu.Unlock()
	return append([]error(nil), m.rel.faults...)
}

// FaultStats reports the fault injector's decision counters; zero when
// the machine runs without a plan.
func (m *Machine) FaultStats() fault.Stats {
	if m.rel == nil {
		return fault.Stats{}
	}
	return m.rel.inj.Stats()
}

// DrainInvariantErr checks the post-Run reliable-delivery invariant:
// every per-link dedup window has collapsed into its contiguous
// watermark (seen empty), no abandoned holes remain, and the atomic
// result-replay cache respects its bound. Nil when the invariant
// holds — including trivially, on a machine without a fault plan.
// Layers built on the MSC+ (the PGAS aggregator in particular) call
// this from their quiesce tests.
func (m *Machine) DrainInvariantErr() error {
	if m.rel == nil {
		return nil
	}
	for i := range m.rel.links {
		l := &m.rel.links[i]
		l.mu.Lock()
		seen, abandoned, results := len(l.seen), len(l.abandoned), len(l.results)
		l.mu.Unlock()
		src, dst := i/m.rel.cells, i%m.rel.cells
		if seen != 0 {
			return fmt.Errorf("link %d->%d: %d seen entries leaked after drain", src, dst, seen)
		}
		if abandoned != 0 {
			return fmt.Errorf("link %d->%d: %d abandoned entries not reconciled", src, dst, abandoned)
		}
		if results > atomicReplayWindow {
			return fmt.Errorf("link %d->%d: replay cache holds %d results, bound is %d",
				src, dst, results, atomicReplayWindow)
		}
	}
	return nil
}
