package machine

import (
	"math"
	"testing"

	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
)

func TestCregAddrBounds(t *testing.T) {
	if CregAddr(0) != CregSpaceBase {
		t.Errorf("CregAddr(0) = %#x", CregAddr(0))
	}
	if CregAddr(5) != CregSpaceBase+20 {
		t.Errorf("CregAddr(5) = %#x", CregAddr(5))
	}
	for _, bad := range []int{-1, mc.NumCommRegs} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CregAddr(%d) should panic", bad)
				}
			}()
			CregAddr(bad)
		}()
	}
}

// TestRemoteStoreToCreg drives a remote store into another cell's
// communication register through the full machine path (remote access
// queue -> T-net -> register file with p-bit).
func TestRemoteStoreToCreg(t *testing.T) {
	m := newMachine(t, Config{})
	seg, data, _ := m.Cell(0).AllocFloat64("v", 2)
	err := m.Run(func(c *Cell) error {
		switch c.ID() {
		case 0:
			data[0] = 2.75
			c.RemoteStore(2, CregAddr(10), seg.Base(), 8)
			c.FenceRemoteStores()
		case 2:
			bits := c.Cregs.Load64(10) // blocks until the p-bit is set
			if got := math.Float64frombits(bits); got != 2.75 {
				t.Errorf("register value = %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemoteStore32ToCreg(t *testing.T) {
	m := newMachine(t, Config{})
	seg, raw, _ := m.Cell(1).AllocBytes("tok", 4)
	err := m.Run(func(c *Cell) error {
		switch c.ID() {
		case 1:
			raw[0], raw[1], raw[2], raw[3] = 0x78, 0x56, 0x34, 0x12
			c.RemoteStore(3, CregAddr(7), seg.Base(), 4)
		case 3:
			if v := c.Cregs.Load32(7); v != 0x12345678 {
				t.Errorf("register = %#x", v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCregBadAddressFaults(t *testing.T) {
	m := newMachine(t, Config{})
	fseg, _, _ := m.Cell(0).AllocFloat64("v", 2)
	bseg, _, _ := m.Cell(0).AllocBytes("b", 8)
	err := m.Run(func(c *Cell) error {
		if c.ID() != 0 {
			return nil
		}
		// Unaligned register address: logged as a fault, dropped.
		c.RemoteStore(1, CregSpaceBase+2, bseg.Base(), 4)
		// Out-of-range register index.
		c.RemoteStore(1, CregSpaceBase+mem.Addr(mc.NumCommRegs*4), bseg.Base(), 4)
		// Wrong size (registers accept 4 or 8 bytes).
		c.RemoteStore(1, CregAddr(0), fseg.Base(), 16)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Cell(1).OS.Faults()); got != 3 {
		t.Errorf("fault log entries = %d, want 3: %v", got, m.Cell(1).OS.Faults())
	}
	// None of the bad stores may have set a p-bit.
	for idx := 0; idx < mc.NumCommRegs; idx++ {
		if m.Cell(1).Cregs.Present(idx) {
			t.Errorf("register %d unexpectedly present", idx)
		}
	}
}
