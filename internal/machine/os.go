package machine

import "sync"

// InterruptCause classifies OS interrupts the hardware raises.
type InterruptCause int

const (
	// IntrQueueRefill: an MSC+ queue emptied while commands were
	// spilled to DRAM and the OS reloaded them (S4.1).
	IntrQueueRefill InterruptCause = iota
	// IntrPageFault: a PUT/GET named an unmapped address (S3.2/S4.1).
	IntrPageFault
	// IntrRingBufferFull: a ring buffer filled and the OS allocated a
	// new one (S4.3).
	IntrRingBufferFull
	// IntrSanitizer: the apsan race detector recorded a report whose
	// detecting access ran on this cell (sanitized machines only).
	IntrSanitizer
	// IntrCellFault: a reliable-delivery retry budget was exhausted
	// and the MSC+ abandoned the transfer (fault-injected machines
	// only).
	IntrCellFault

	numInterruptCauses
)

func (c InterruptCause) String() string {
	switch c {
	case IntrQueueRefill:
		return "queue-refill"
	case IntrPageFault:
		return "page-fault"
	case IntrRingBufferFull:
		return "ring-buffer-full"
	case IntrSanitizer:
		return "sanitizer-report"
	case IntrCellFault:
		return "cell-fault"
	}
	return "unknown"
}

// OS is a cell's operating-system state: interrupt counters and the
// fault log. The functional machine never kills a program on an
// asynchronous fault (the hardware drops the offending message and
// interrupts); tests assert on these logs instead.
type OS struct {
	mu         sync.Mutex
	interrupts [numInterruptCauses]int64
	faults     []error
	// obsHook, when set, observes every interrupt (obs layer); it runs
	// outside the OS lock on the interrupted goroutine.
	obsHook func(InterruptCause)
}

func newOS() *OS { return &OS{} }

func (o *OS) interrupt(cause InterruptCause) {
	o.mu.Lock()
	o.interrupts[cause]++
	hook := o.obsHook
	o.mu.Unlock()
	if hook != nil {
		hook(cause)
	}
}

// reset clears the interrupt counters and fault log between
// gang-scheduled jobs; the obs hook survives — it belongs to the
// machine's observability layer, not the job.
func (o *OS) reset() {
	o.mu.Lock()
	o.interrupts = [numInterruptCauses]int64{}
	o.faults = nil
	o.mu.Unlock()
}

func (o *OS) fault(err error) {
	o.mu.Lock()
	o.faults = append(o.faults, err)
	o.mu.Unlock()
}

// Interrupt records an OS interrupt of the given cause; exported for
// layered subsystems (ring buffers) that trap to the OS.
func (o *OS) Interrupt(cause InterruptCause) { o.interrupt(cause) }

// Interrupts reports how many interrupts of the given cause fired.
func (o *OS) Interrupts(cause InterruptCause) int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.interrupts[cause]
}

// InterruptCounts reports all interrupt counters keyed by cause name,
// in the form the metrics snapshot serializes.
func (o *OS) InterruptCounts() map[string]int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]int64, numInterruptCauses)
	for c := InterruptCause(0); c < numInterruptCauses; c++ {
		if o.interrupts[c] != 0 {
			out[c.String()] = o.interrupts[c]
		}
	}
	return out
}

// Faults returns a copy of the fault log.
func (o *OS) Faults() []error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]error(nil), o.faults...)
}
