package machine

import "errors"

// Typed sentinel errors for the simulator's user-facing failure
// classes. Layered packages (core, the facade) wrap these with
// context via fmt.Errorf("...: %w", ...), so callers branch with
// errors.Is instead of matching message strings.
var (
	// ErrBadAddress marks a transfer aimed at an invalid destination
	// cell or an unmapped address.
	ErrBadAddress = errors.New("bad address")
	// ErrBadStride marks an invalid transfer shape: a malformed stride
	// pattern, mismatched send/receive payload totals, or a transfer
	// beyond the DMA size limit.
	ErrBadStride = errors.New("bad stride")
	// ErrQueueFull marks a command list that outgrew its reservation
	// (the CommandList analogue of the MSC+ queue limit; the hardware
	// queues themselves never reject — they spill to DRAM).
	ErrQueueFull = errors.New("queue full")
	// ErrRetryBudget marks a transfer abandoned after the
	// reliable-delivery retry budget; CellFault wraps it.
	ErrRetryBudget = errors.New("retry budget exhausted")
)
