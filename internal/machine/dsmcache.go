package machine

import (
	"fmt"

	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/obs"
	"ap1000plus/internal/tnet"
	"ap1000plus/internal/topology"
)

// DSMHooks connects a cell's MSC+ to the DSM write-through page cache
// (internal/dsm). The machine stays ignorant of cache policy: it only
// reports the three events the directory protocol is built from. All
// hooks run on controller goroutines (the receive side executes on the
// sending cell's controller), so they must not block — take short
// locks, send packets, return.
type DSMHooks struct {
	// Shared fires on the owning cell when a remote load with the
	// cache-fill bit is served: sharer is about to hold a cached copy
	// of [addr, addr+size) of this cell's memory. Called after address
	// translation and BEFORE the reply payload is captured, so a store
	// that lands after registration is guaranteed to invalidate the
	// copy the sharer receives. epoch is the sharer's fill generation
	// for the page, echoed back in eviction notices so the owner can
	// tell a stale notice from one that outranks the registration.
	Shared func(sharer topology.CellID, addr mem.Addr, size int64, epoch int32)
	// Stored fires on the owning cell when a remote store into
	// [addr, addr+size) of its memory has been delivered, BEFORE the
	// store is acknowledged: the directory owner invalidates every
	// registered sharer of the written pages, so a writer's fence
	// implies all invalidations have been applied.
	Stored func(writer topology.CellID, addr mem.Addr, size int64)
	// Inval fires on a sharing cell when an invalidation for the page
	// at owner-local address page in owner's memory arrives; writer is
	// the cell whose store triggered it.
	Inval func(owner topology.CellID, page mem.Addr, writer topology.CellID)
	// Evicted fires on the owning cell when a sharer reports it has
	// silently dropped its cached copy of the page at owner-local
	// address page (capacity eviction). epoch is the fill generation
	// the sharer registered that copy under: the owner must keep the
	// registration if it has since re-registered the sharer at a newer
	// epoch (the notice raced a re-fill).
	Evicted func(sharer topology.CellID, page mem.Addr, epoch int64)
}

// SetDSMHooks installs the DSM cache's directory hooks. Installing
// twice panics: the cell has one MSC+ directory.
func (c *Cell) SetDSMHooks(h *DSMHooks) {
	if h != nil && !c.dsmHooks.CompareAndSwap(nil, h) {
		panic(fmt.Sprintf("machine: cell %d DSM hooks already installed", c.id))
	}
}

// SendDSMInval sends a page-invalidation message to dst over the
// reliable T-net path: page is the invalidated page's address in THIS
// (owning) cell's memory, writer the cell whose store triggered the
// invalidation. Called by the DSM directory from controller context
// (the Stored hook) or from the owning CPU (a local store to an owned
// shared page); neither holds locks across the send.
func (c *Cell) SendDSMInval(dst topology.CellID, page mem.Addr, writer topology.CellID) {
	cmd := msc.Command{
		Op: msc.OpDSMInval, Src: c.id, Dst: dst,
		RAddr: page, Tag: int64(writer),
	}
	if o := c.machine.obs; o != nil {
		o.Cell(int(c.id)).DSMInvalsSent.Add(1)
		if tl := o.Timeline(); tl != nil {
			tl.Instant(int(c.id), obs.TidMSC, "dsm", "inval-send", o.NowUs())
		}
	}
	c.machine.xmit(c, tnet.Packet{Head: cmd, SanTid: -1})
}

// SendDSMEvict notifies the page owner dst that this cell has evicted
// its cached copy of the page at owner-local address page, registered
// under fill generation epoch. The owner drops this cell from the
// page's sharer set (unless a newer registration outranks the notice),
// so later stores stop sending spurious invalidations. Called by the
// DSM cache from CPU context after the eviction is already effective
// locally; losing the notice under a fault plan only costs extra
// invalidations, never correctness.
func (c *Cell) SendDSMEvict(dst topology.CellID, page mem.Addr, epoch int32) {
	cmd := msc.Command{
		Op: msc.OpDSMEvict, Src: c.id, Dst: dst,
		RAddr: page, Tag: int64(epoch),
	}
	if o := c.machine.obs; o != nil {
		if tl := o.Timeline(); tl != nil {
			tl.Instant(int(c.id), obs.TidMSC, "dsm", "evict-send", o.NowUs())
		}
	}
	c.machine.xmit(c, tnet.Packet{Head: cmd, SanTid: -1})
}

// SanReadAt records a CPU-context read of memCell's DRAM with the
// sanitizer — SanRead for a range that lives on another cell. The DSM
// cache calls it on every cache hit so a race between a remote write
// and a load served from the local cached copy is still a race on the
// owning cell's memory.
func (c *Cell) SanReadAt(memCell int, addr mem.Addr, pat mem.Stride, op string) {
	if s := c.machine.san; s != nil {
		id := int(c.id)
		s.Access(s.CPU(id), id, false, memCell, uint64(addr), pat.ItemSize, pat.Count, pat.Skip, op)
	}
}
