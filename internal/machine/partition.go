package machine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ap1000plus/internal/apsan"
	"ap1000plus/internal/snet"
	"ap1000plus/internal/topology"
)

// quiesce is a partition's completion doorbell: work counts commands
// pushed but not fully processed plus ring-wire packets enqueued but
// not yet delivered, and wait parks the draining goroutine until the
// count hits zero — no busy-spin, so a host running many tenant
// machines pays ~no CPU for a partition that is merely draining.
//
// No-missed-wakeup argument: a waiter that observed work != 0
// registers in waiters before blocking in cond.Wait (under mu). The
// decrement that takes work to zero then reads waiters — the
// sequentially consistent atomics order the waiter's registration
// before that read, or the waiter's re-check of work after the
// decrement — and its Lock/Broadcast cannot run before the waiter is
// parked, because the waiter holds mu from registration until Wait
// releases it inside the park.
type quiesce struct {
	work    atomic.Int64
	waiters atomic.Int32
	mu      sync.Mutex
	cond    *sync.Cond
}

func (q *quiesce) add(n int64) {
	if q.work.Add(n) == 0 && q.waiters.Load() != 0 {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	}
}

func (q *quiesce) wait() {
	if q.work.Load() == 0 {
		return
	}
	q.mu.Lock()
	q.waiters.Add(1)
	for q.work.Load() != 0 {
		q.cond.Wait()
	}
	q.waiters.Add(-1)
	q.mu.Unlock()
}

// Partition is one gang-scheduling unit of a partitioned machine: a
// contiguous, disjoint set of cells with isolated T-net routing, its
// own B-net segment and S-net barrier domain, and an independent
// quiesce domain. Jobs are placed on whole partitions (RunJob); one
// job occupies a partition at a time.
type Partition struct {
	m     *Machine
	index int
	group *topology.Group
	base  int // first cell id — partitions are contiguous
	n     int

	q    quiesce
	busy atomic.Bool
	jobs atomic.Int64 // completed jobs, drives the job-state reset
}

// Index reports the partition's index on its machine.
func (p *Partition) Index() int { return p.index }

// Size reports the partition's cell count.
func (p *Partition) Size() int { return p.n }

// Group returns the partition's cell group (for ranks and members).
func (p *Partition) Group() *topology.Group { return p.group }

// Jobs reports how many jobs have completed on the partition.
func (p *Partition) Jobs() int64 { return p.jobs.Load() }

// ownsStream reports whether a wire stream originates inside the
// partition — the drain flushes only its own held packets.
func (p *Partition) ownsStream(src, dst topology.CellID) bool {
	return int(src) >= p.base && int(src) < p.base+p.n
}

// buildPartitions carves the torus into k contiguous partitions and
// the partition-scoped S-net domains. Runs before cells are built so
// newCell can bind each cell to its partition.
func (m *Machine) buildPartitions(torus *topology.Torus, k int) error {
	groups, err := topology.Partition(torus, k)
	if err != nil {
		return err
	}
	m.partOf = make([]int32, torus.Cells())
	sizes := make([]int, k)
	for i, g := range groups {
		base := int(g.Members()[0])
		for _, id := range g.Members() {
			if int(id) < base {
				base = int(id)
			}
			m.partOf[id] = int32(i)
		}
		p := &Partition{m: m, index: i, group: g, base: base, n: g.Size()}
		p.q.cond = sync.NewCond(&p.q.mu)
		m.parts = append(m.parts, p)
		sizes[i] = g.Size()
	}
	m.snet = snet.NewDomains(m.partOf, sizes)
	if k > 1 {
		m.tnet.SetPartitions(m.partOf)
		m.bnet.SetPartitions(m.partOf)
	}
	return nil
}

// Partitions reports the number of partitions (at least 1).
func (m *Machine) Partitions() int { return len(m.parts) }

// Partition returns partition i.
func (m *Machine) Partition(i int) *Partition { return m.parts[i] }

// PartitionOf reports which partition a cell belongs to.
func (m *Machine) PartitionOf(id topology.CellID) int { return int(m.partOf[id]) }

// Open starts the machine's delivery engine (ring-wire workers or
// per-cell controllers) without running a job, so a scheduler can
// gang-place jobs onto partitions with RunJob. Run is Open + one job
// per partition + Close. Reopening a machine that was closed after
// earlier jobs is legal: the MSC queues reopen and the engine
// restarts.
func (m *Machine) Open() error {
	m.lifeMu.Lock()
	defer m.lifeMu.Unlock()
	if m.opened {
		return fmt.Errorf("machine: Open of an already open machine")
	}
	if m.everRan {
		for _, c := range m.cells {
			c.MSC.Reopen()
		}
		if m.pool != nil {
			m.pool.reopen()
		}
		if m.cfg.Sanitize {
			m.resetSanitizer()
		}
	}
	if m.pool != nil {
		m.pool.start(&m.ctlWG)
	} else {
		for _, c := range m.cells {
			m.ctlWG.Add(1)
			go func(c *Cell) {
				defer m.ctlWG.Done()
				m.controller(c)
			}(c)
		}
	}
	m.opened = true
	return nil
}

// resetSanitizer rebuilds the race detector for a fresh epoch: apsan's
// logical clocks and shadow DRAM describe one job's happens-before
// history, which ends at the previous Close's full drain.
func (m *Machine) resetSanitizer() {
	m.san = apsan.New(m.torus.Cells())
	m.san.OnReport = func(r apsan.Report) {
		m.cells[r.Access.Cell].OS.interrupt(IntrSanitizer)
	}
}

// Close stops the delivery engine once every partition is idle and
// waits for the workers (or controllers) to exit. It is an error to
// Close while a job is running. A closed machine can be opened again.
func (m *Machine) Close() error {
	m.lifeMu.Lock()
	defer m.lifeMu.Unlock()
	if !m.opened {
		return fmt.Errorf("machine: Close of a closed machine")
	}
	for _, p := range m.parts {
		if p.busy.Load() {
			return fmt.Errorf("machine: Close with a job running on partition %d", p.index)
		}
	}
	for _, c := range m.cells {
		c.MSC.Close()
	}
	if m.pool != nil {
		m.pool.close()
	}
	m.ctlWG.Wait()
	m.opened = false
	m.everRan = true
	return nil
}

// RunJob executes program SPMD on one partition: one goroutine per
// partition cell. It returns after every cell's program finished AND
// the partition's in-flight communication drained. The machine must
// be Open; a partition runs one job at a time (gang occupancy) while
// different partitions run concurrently. Before the second and later
// jobs on a partition, job-scoped cell state resets (flags, comm
// registers, sinks, pending loads, broadcast inboxes, DSM hooks, OS
// logs); memory segments and MMU mappings persist for the machine's
// lifetime — the OS does not scrub DRAM between jobs, so each job
// allocates its own working set.
func (m *Machine) RunJob(part int, program func(c *Cell) error) error {
	if part < 0 || part >= len(m.parts) {
		return fmt.Errorf("machine: RunJob on partition %d of %d", part, len(m.parts))
	}
	m.lifeMu.Lock()
	opened := m.opened
	m.lifeMu.Unlock()
	if !opened {
		return fmt.Errorf("machine: RunJob on a closed machine (call Open first)")
	}
	p := m.parts[part]
	if !p.busy.CompareAndSwap(false, true) {
		return fmt.Errorf("machine: partition %d is already running a job", part)
	}
	defer p.busy.Store(false)
	if p.jobs.Load() > 0 {
		for _, c := range m.cells[p.base : p.base+p.n] {
			c.resetJob()
		}
	}

	errs := make([]error, p.n)
	var cpuWG sync.WaitGroup
	for i := 0; i < p.n; i++ {
		c := m.cells[p.base+i]
		cpuWG.Add(1)
		go func(i int, c *Cell) {
			defer cpuWG.Done()
			defer func() {
				if r := recover(); r != nil {
					buf := make([]byte, 8192)
					n := runtime.Stack(buf, false)
					errs[i] = fmt.Errorf("machine: cell %d panic: %v\n%s", c.id, r, buf[:n])
				}
			}()
			errs[i] = program(c)
		}(i, c)
	}
	cpuWG.Wait()

	// Drain: park on the partition's doorbell until all of its queued
	// and chained commands (and, on the async ring wire, its enqueued
	// packets) completed. Under a fault plan, reordered packets held in
	// limbo on the partition's own streams are flushed once it is
	// quiescent; a flush can queue new commands (a late GET request),
	// so drain again until nothing is held.
	for {
		p.q.wait()
		if m.rel == nil || m.tnet.FlushHeldWhere(p.ownsStream) == 0 {
			break
		}
	}
	if m.rel != nil {
		// Quiescent: collapse the dedup holes left by abandoned
		// (retry-budget-exhausted) packets on the partition's links so
		// the per-link seen windows drain to empty instead of growing
		// for the rest of the run.
		m.rel.reconcileRange(p.base, p.base+p.n)
	}
	p.jobs.Add(1)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
