package machine

import (
	"strings"
	"sync/atomic"
	"testing"

	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

func newMachine(t testing.TB, cfg Config) *Machine {
	t.Helper()
	if cfg.Width == 0 {
		cfg.Width, cfg.Height = 2, 2
	}
	if cfg.MemoryPerCell == 0 {
		cfg.MemoryPerCell = 1 << 20
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTable1Spec(t *testing.T) {
	s := Table1()
	if s.Processor != "SuperSPARC" || s.ClockMHz != 50 || s.MaxCells != 1024 {
		t.Errorf("spec = %+v", s)
	}
	if s.PeakGFLOPSAtMax != 51.2 {
		t.Errorf("peak = %v", s.PeakGFLOPSAtMax)
	}
}

// TestPutDeliversWithFlags drives a raw PUT through the MSC+ path:
// data lands in remote memory, send flag rises on the sender, recv
// flag on the receiver.
func TestPutDeliversWithFlags(t *testing.T) {
	m := newMachine(t, Config{})
	type cellState struct {
		seg  *mem.Segment
		data []float64
		sf   mc.FlagID
		rf   mc.FlagID
	}
	states := make([]cellState, 4)
	// Setup phase must predate Run's program for cross-cell address
	// knowledge; allocate identically on every cell.
	for id := 0; id < 4; id++ {
		c := m.Cell(topology.CellID(id))
		seg, data, err := c.AllocFloat64("buf", 8)
		if err != nil {
			t.Fatal(err)
		}
		states[id] = cellState{seg: seg, data: data, sf: c.Flags.Alloc(), rf: c.Flags.Alloc()}
	}
	err := m.Run(func(c *Cell) error {
		st := states[c.ID()]
		if c.ID() == 0 {
			for i := range st.data {
				st.data[i] = float64(i + 1)
			}
			c.PushUser(msc.Command{
				Op: msc.OpPut, Dst: 1,
				RAddr: states[1].seg.Base(), LAddr: st.seg.Base(),
				RStride: mem.Contiguous(64), LStride: mem.Contiguous(64),
				SendFlag: st.sf, RecvFlag: states[1].rf,
			})
			c.Flags.Wait(st.sf, 1)
		}
		if c.ID() == 1 {
			c.Flags.Wait(st.rf, 1)
			for i, v := range st.data {
				if v != float64(i+1) {
					t.Errorf("cell 1 data[%d] = %v", i, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.TNetStats().Messages != 1 || m.TNetStats().Bytes != 64 {
		t.Errorf("tnet stats = %+v", m.TNetStats())
	}
}

// TestGetRoundTrip: cell 0 GETs data owned by cell 2; both flags rise.
func TestGetRoundTrip(t *testing.T) {
	m := newMachine(t, Config{})
	segs := make([]*mem.Segment, 4)
	datas := make([][]float64, 4)
	for id := 0; id < 4; id++ {
		c := m.Cell(topology.CellID(id))
		seg, data, _ := c.AllocFloat64("buf", 4)
		segs[id], datas[id] = seg, data
	}
	// Requester-side recv flag; remote-side send flag.
	rf := m.Cell(0).Flags.Alloc()
	sfRemote := m.Cell(2).Flags.Alloc()
	err := m.Run(func(c *Cell) error {
		if c.ID() == 2 {
			for i := range datas[2] {
				datas[2][i] = 7.5 * float64(i)
			}
		}
		c.HWBarrier() // data ready everywhere
		if c.ID() == 0 {
			c.PushUser(msc.Command{
				Op: msc.OpGet, Dst: 2,
				RAddr: segs[2].Base(), LAddr: segs[0].Base(),
				RStride: mem.Contiguous(32), LStride: mem.Contiguous(32),
				SendFlag: sfRemote, RecvFlag: rf,
			})
			c.Flags.Wait(rf, 1)
			for i, v := range datas[0] {
				if v != 7.5*float64(i) {
					t.Errorf("got[%d] = %v", i, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cell(2).Flags.Load(sfRemote) != 1 {
		t.Error("remote send flag did not rise")
	}
	// GET = request + reply on the wire.
	if m.TNetStats().Messages != 2 {
		t.Errorf("messages = %d", m.TNetStats().Messages)
	}
}

// TestGetAsAcknowledge reproduces the S4.1 trick: a PUT followed by a
// zero-address GET to the same destination; when the GET reply
// arrives, the PUT is known to be complete (static routing = in-order
// delivery).
func TestGetAsAcknowledge(t *testing.T) {
	m := newMachine(t, Config{})
	segs := make([]*mem.Segment, 4)
	for id := 0; id < 4; id++ {
		seg, _, _ := m.Cell(topology.CellID(id)).AllocFloat64("buf", 4)
		segs[id] = seg
	}
	err := m.Run(func(c *Cell) error {
		if c.ID() != 0 {
			return nil
		}
		src := segs[0].Base()
		c.PushUser(msc.Command{
			Op: msc.OpPut, Dst: 3,
			RAddr: segs[3].Base(), LAddr: src,
			RStride: mem.Contiguous(32), LStride: mem.Contiguous(32),
		})
		// Acknowledge GET: address 0, ack flag.
		c.PushUser(msc.Command{
			Op: msc.OpGet, Dst: 3,
			RAddr: 0, LAddr: 0,
			RStride: mem.Contiguous(1), LStride: mem.Contiguous(1),
			RecvFlag: mc.AckFlagID,
		})
		c.Flags.Wait(mc.AckFlagID, 1)
		// PUT must have been delivered by now.
		if got := segs[3].Float64Data(); got[0] != segs[0].Float64Data()[0] {
			t.Error("ack arrived before PUT delivery")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStridePutThroughMachine(t *testing.T) {
	m := newMachine(t, Config{})
	segs := make([]*mem.Segment, 4)
	datas := make([][]float64, 4)
	for id := 0; id < 4; id++ {
		seg, data, _ := m.Cell(topology.CellID(id)).AllocFloat64("m", 16)
		segs[id], datas[id] = seg, data
	}
	rf := m.Cell(1).Flags.Alloc()
	err := m.Run(func(c *Cell) error {
		if c.ID() == 0 {
			for i := range datas[0] {
				datas[0][i] = float64(i)
			}
			// Send every 4th element (a "column"), deliver contiguous.
			c.PushUser(msc.Command{
				Op: msc.OpPut, Dst: 1,
				RAddr: segs[1].Base(), LAddr: segs[0].Base(),
				LStride:  mem.Stride{ItemSize: 8, Count: 4, Skip: 24},
				RStride:  mem.Contiguous(32),
				RecvFlag: rf,
			})
		}
		if c.ID() == 1 {
			c.Flags.Wait(rf, 1)
			for i := 0; i < 4; i++ {
				if datas[1][i] != float64(i*4) {
					t.Errorf("recv[%d] = %v", i, datas[1][i])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemoteStoreAndLoad(t *testing.T) {
	m := newMachine(t, Config{})
	segs := make([]*mem.Segment, 4)
	datas := make([][]float64, 4)
	for id := 0; id < 4; id++ {
		seg, data, _ := m.Cell(topology.CellID(id)).AllocFloat64("dsm", 4)
		segs[id], datas[id] = seg, data
	}
	err := m.Run(func(c *Cell) error {
		if c.ID() == 0 {
			datas[0][0] = 99.5
			c.RemoteStore(2, segs[2].Base(), segs[0].Base(), 8)
			c.Flags.Wait(mc.RemoteAckFlagID, 1) // auto-acknowledged
			// Now load it back from cell 2.
			p, err := c.RemoteLoad(2, segs[2].Base(), 8)
			if err != nil {
				return err
			}
			vals, ok := p.Float64s()
			if !ok || vals[0] != 99.5 {
				t.Errorf("remote load = %v, %v", vals, ok)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutToUnmappedAddressFaults(t *testing.T) {
	m := newMachine(t, Config{})
	seg, _, _ := m.Cell(0).AllocFloat64("buf", 4)
	err := m.Run(func(c *Cell) error {
		if c.ID() == 0 {
			c.PushUser(msc.Command{
				Op: msc.OpPut, Dst: 1,
				RAddr: mem.Addr(0x700000), LAddr: seg.Base(),
				RStride: mem.Contiguous(32), LStride: mem.Contiguous(32),
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The receiving cell takes the page-fault interrupt (S4.1).
	if n := m.Cell(1).OS.Interrupts(IntrPageFault); n != 1 {
		t.Errorf("cell 1 page-fault interrupts = %d", n)
	}
	if len(m.Cell(1).OS.Faults()) == 0 {
		t.Error("fault log empty")
	}
}

func TestLocalSendFaultDropsCommand(t *testing.T) {
	m := newMachine(t, Config{})
	err := m.Run(func(c *Cell) error {
		if c.ID() == 0 {
			c.PushUser(msc.Command{
				Op: msc.OpPut, Dst: 1,
				RAddr: 0x100000, LAddr: 0x200000, // both unmapped
				RStride: mem.Contiguous(8), LStride: mem.Contiguous(8),
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := m.Cell(0).OS.Interrupts(IntrPageFault); n != 1 {
		t.Errorf("sender page-fault interrupts = %d", n)
	}
	if m.TNetStats().Messages != 0 {
		t.Error("faulting command must not reach the network")
	}
}

func TestQueueOverflowSpills(t *testing.T) {
	m := newMachine(t, Config{})
	segs := make([]*mem.Segment, 4)
	for id := 0; id < 4; id++ {
		seg, _, _ := m.Cell(topology.CellID(id)).AllocFloat64("b", 1024)
		segs[id] = seg
	}
	rf := m.Cell(1).Flags.Alloc()
	const puts = 200
	err := m.Run(func(c *Cell) error {
		if c.ID() == 0 {
			for i := 0; i < puts; i++ {
				c.PushUser(msc.Command{
					Op: msc.OpPut, Dst: 1,
					RAddr: segs[1].Base(), LAddr: segs[0].Base(),
					RStride: mem.Contiguous(8), LStride: mem.Contiguous(8),
					RecvFlag: rf,
				})
			}
		}
		if c.ID() == 1 {
			c.Flags.Wait(rf, puts)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Cell(0).MSC.Stats().UserSend
	if s.Pushes != puts {
		t.Errorf("pushes = %d", s.Pushes)
	}
	// The CPU raced the controller; whether spills occurred depends on
	// scheduling, but every command must have been popped.
	if s.Pops != puts {
		t.Errorf("pops = %d", s.Pops)
	}
	if m.Cell(1).Flags.Load(rf) != puts {
		t.Errorf("recv flag = %d", m.Cell(1).Flags.Load(rf))
	}
}

func TestHWBarrier(t *testing.T) {
	m := newMachine(t, Config{})
	var phase atomic.Int64
	err := m.Run(func(c *Cell) error {
		phase.Add(1)
		c.HWBarrier()
		if phase.Load() != 4 {
			t.Error("barrier released early")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Barriers() != 1 {
		t.Errorf("barriers = %d", m.Barriers())
	}
}

func TestBroadcastOverBnet(t *testing.T) {
	m := newMachine(t, Config{})
	seg, data, _ := m.Cell(0).AllocFloat64("b", 2)
	err := m.Run(func(c *Cell) error {
		if c.ID() == 0 {
			data[0], data[1] = 3.5, -1.25
			if err := c.Broadcast(seg.Base(), 16, 42); err != nil {
				return err
			}
		}
		p := c.RecvBroadcast(42)
		vals, ok := p.Float64s()
		if !ok || vals[0] != 3.5 || vals[1] != -1.25 {
			t.Errorf("cell %d broadcast = %v", c.ID(), vals)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := m.BNetStats(); s.Broadcasts != 1 {
		t.Errorf("bnet stats = %+v", s)
	}
}

func TestTraceRecording(t *testing.T) {
	m := newMachine(t, Config{TraceApp: "test"})
	g := m.DefineGroup(topology.Row(m.Torus(), 0))
	err := m.Run(func(c *Cell) error {
		c.RecordCompute(5.0)
		if c.Recorder() == nil {
			t.Error("recorder missing under tracing")
			return nil
		}
		c.Recorder().Put(0, 64, 1, 0, 0, false, false)
		c.Recorder().Barrier(trace.AllGroup)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := m.Trace()
	if ts == nil {
		t.Fatal("trace missing")
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(ts.Meta.Groups); got != 2 {
		t.Fatalf("groups = %d", got)
	}
	if len(ts.Group(g)) != 2 {
		t.Fatalf("row group size = %d", len(ts.Group(g)))
	}
	row := trace.Stats(ts)
	if row.Put != 1 || row.Sync != 1 || row.ComputeUs != 5 {
		t.Errorf("stats = %+v", row)
	}
}

func TestTraceDisabled(t *testing.T) {
	m := newMachine(t, Config{})
	if m.Trace() != nil {
		t.Error("trace should be nil when disabled")
	}
	err := m.Run(func(c *Cell) error {
		if c.Recorder() != nil {
			t.Error("recorder should be nil")
		}
		c.RecordCompute(1) // must be a safe no-op
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPanicBecomesError(t *testing.T) {
	m := newMachine(t, Config{})
	err := m.Run(func(c *Cell) error {
		if c.ID() == 2 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunDrainsInFlight(t *testing.T) {
	// Fire PUTs with no flags and return immediately; Run must still
	// deliver everything before returning.
	m := newMachine(t, Config{})
	segs := make([]*mem.Segment, 4)
	for id := 0; id < 4; id++ {
		seg, _, _ := m.Cell(topology.CellID(id)).AllocFloat64("b", 4)
		segs[id] = seg
	}
	err := m.Run(func(c *Cell) error {
		if c.ID() == 0 {
			for i := 0; i < 50; i++ {
				c.PushUser(msc.Command{
					Op: msc.OpPut, Dst: 3,
					RAddr: segs[3].Base(), LAddr: segs[0].Base(),
					RStride: mem.Contiguous(8), LStride: mem.Contiguous(8),
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TNetStats().Messages; got != 50 {
		t.Errorf("messages delivered = %d, want 50", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Width: 1, Height: 1}); err == nil {
		t.Error("1 cell should be rejected")
	}
	if _, err := New(Config{Width: 2, Height: 2, MemoryPerCell: -5}); err == nil {
		t.Error("negative memory should be rejected")
	}
}

func BenchmarkPutRoundTrip(b *testing.B) {
	// A 1 KB PUT ping-pong between two cells through the full MSC+
	// path, synchronized by receive flags.
	m := newMachine(b, Config{})
	segs := make([]*mem.Segment, 4)
	for id := 0; id < 4; id++ {
		seg, _, _ := m.Cell(topology.CellID(id)).AllocFloat64("b", 128)
		segs[id] = seg
	}
	rf0 := m.Cell(0).Flags.Alloc()
	rf1 := m.Cell(1).Flags.Alloc()
	b.ReportAllocs()
	err := m.Run(func(c *Cell) error {
		switch c.ID() {
		case 0:
			for i := 0; i < b.N; i++ {
				c.PushUser(msc.Command{
					Op: msc.OpPut, Dst: 1,
					RAddr: segs[1].Base(), LAddr: segs[0].Base(),
					RStride: mem.Contiguous(1024), LStride: mem.Contiguous(1024),
					RecvFlag: rf1,
				})
				c.Flags.Wait(rf0, int64(i+1))
			}
		case 1:
			for i := 0; i < b.N; i++ {
				c.Flags.Wait(rf1, int64(i+1))
				c.PushUser(msc.Command{
					Op: msc.OpPut, Dst: 0,
					RAddr: segs[0].Base(), LAddr: segs[1].Base(),
					RStride: mem.Contiguous(1024), LStride: mem.Contiguous(1024),
					RecvFlag: rf0,
				})
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// TestRunSequentialLegal pins the reusable-machine contract: back-to-
// back Run calls on one machine succeed (the gang scheduler reuses
// machines across jobs), while concurrent Run calls still collide on
// the open latch.
func TestRunSequentialLegal(t *testing.T) {
	m := newMachine(t, Config{})
	for job := 0; job < 3; job++ {
		if err := m.Run(func(c *Cell) error { return nil }); err != nil {
			t.Fatalf("run %d: %v", job, err)
		}
	}
	if err := m.Open(); err != nil {
		t.Fatal(err)
	}
	if err := m.Open(); err == nil {
		t.Fatal("double Open must be rejected")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err == nil {
		t.Fatal("double Close must be rejected")
	}
}

func TestCacheInvalidationAccounting(t *testing.T) {
	m := newMachine(t, Config{})
	segs := make([]*mem.Segment, 4)
	for id := 0; id < 4; id++ {
		segs[id], _, _ = m.Cell(topology.CellID(id)).AllocFloat64("b", 128)
	}
	rf := m.Cell(1).Flags.Alloc()
	err := m.Run(func(c *Cell) error {
		if c.ID() == 0 {
			// 1000 bytes = 32 cache lines (ceil(1000/32)).
			c.PushUser(msc.Command{
				Op: msc.OpPut, Dst: 1,
				RAddr: segs[1].Base(), LAddr: segs[0].Base(),
				RStride: mem.Contiguous(1000), LStride: mem.Contiguous(1000),
				RecvFlag: rf,
			})
		}
		if c.ID() == 1 {
			c.Flags.Wait(rf, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Cell(1).CacheInvalidations(); got != 32 {
		t.Errorf("invalidated lines = %d, want 32", got)
	}
	if got := m.Cell(0).CacheInvalidations(); got != 0 {
		t.Errorf("sender invalidations = %d, want 0", got)
	}
}

// TestFullScaleMachine exercises the maximum configuration: 1024
// cells (32x32), the AP1000+'s upper limit, with a neighbour PUT and
// an S-net barrier per cell.
func TestFullScaleMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-cell machine in short mode")
	}
	m, err := New(Config{Width: 32, Height: 32, MemoryPerCell: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	segs := make([]*mem.Segment, m.Cells())
	flags := make([]mc.FlagID, m.Cells())
	for id := 0; id < m.Cells(); id++ {
		segs[id], _, _ = m.Cell(topology.CellID(id)).AllocFloat64("b", 8)
		flags[id] = m.Cell(topology.CellID(id)).Flags.Alloc()
	}
	err = m.Run(func(c *Cell) error {
		me := int(c.ID())
		next := (me + 1) % m.Cells()
		seg := segs[me]
		seg.Float64Data()[0] = float64(me)
		c.PushUser(msc.Command{
			Op: msc.OpPut, Dst: topology.CellID(next),
			RAddr: segs[next].Base() + 8, LAddr: seg.Base(),
			RStride: mem.Contiguous(8), LStride: mem.Contiguous(8),
			RecvFlag: flags[next],
		})
		c.Flags.Wait(flags[me], 1)
		if got := seg.Float64Data()[1]; got != float64((me-1+m.Cells())%m.Cells()) {
			t.Errorf("cell %d received %v", me, got)
		}
		c.HWBarrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.TNetStats().Messages != 1024 {
		t.Errorf("messages = %d", m.TNetStats().Messages)
	}
	if m.Barriers() != 1 {
		t.Errorf("barriers = %d", m.Barriers())
	}
}
