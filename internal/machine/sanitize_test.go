package machine_test

import (
	"strings"
	"testing"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/topology"
)

func newSanMachine(t *testing.T, sanitize bool) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.Config{Width: 2, Height: 2, Sanitize: sanitize})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// racyProgram seeds a communication race: cell 0 PUTs into cell 1's
// buffer with no flags, while cell 1 reads that same buffer as the
// source of its own PUT without waiting for anything. Whatever the
// interleaving, the receive-DMA write and the send-DMA read are
// unordered.
func racyProgram(c *machine.Cell) error {
	seg, _, err := c.AllocFloat64("buf", 8)
	if err != nil {
		return err
	}
	dst, _, err := c.AllocFloat64("dst", 8)
	if err != nil {
		return err
	}
	// Everyone maps its segments before traffic flows; a barrier
	// does not order the PUT against the read below (that is the
	// point), but it does order allocation against delivery.
	c.HWBarrier()
	pat := mem.Contiguous(64)
	switch c.ID() {
	case 0:
		c.PushUser(msc.Command{
			Op: msc.OpPut, Dst: 1,
			RAddr: seg.Base(), LAddr: seg.Base(),
			RStride: pat, LStride: pat,
		})
	case 1:
		c.PushUser(msc.Command{
			Op: msc.OpPut, Dst: 2,
			RAddr: dst.Base(), LAddr: seg.Base(),
			RStride: pat, LStride: pat,
		})
	}
	return nil
}

// skipSeededRace skips tests whose program genuinely races on the
// simulated DRAM when the binary carries the Go race detector, which
// would (correctly) report the seeded race before apsan can.
func skipSeededRace(t *testing.T) {
	t.Helper()
	if raceDetectorEnabled {
		t.Skip("seeded race is a real data race; covered by plain go test, reported by -race otherwise")
	}
}

func TestSanitizerCatchesPutReadRace(t *testing.T) {
	skipSeededRace(t)
	m := newSanMachine(t, true)
	if err := m.Run(racyProgram); err != nil {
		t.Fatal(err)
	}
	err := m.SanitizeErr()
	if err == nil {
		t.Fatal("seeded PUT/read race not detected")
	}
	msg := err.Error()
	if !strings.Contains(msg, "PUT") {
		t.Errorf("report does not name the PUT operations: %v", msg)
	}
	// Both access sites must be present, each with cell and thread.
	if !strings.Contains(msg, "cell 1") {
		t.Errorf("report does not locate the conflict on cell 1's memory: %v", msg)
	}
	var intrs int64
	for id := 0; id < m.Cells(); id++ {
		intrs += m.Cell(topology.CellID(id)).OS.Interrupts(machine.IntrSanitizer)
	}
	if intrs == 0 {
		t.Error("no sanitizer interrupt was raised")
	}
}

// The same racy program on an unsanitized machine runs silently —
// the bug the sanitizer exists to surface.
func TestUnsanitizedMachineAcceptsRacySilently(t *testing.T) {
	skipSeededRace(t)
	m := newSanMachine(t, false)
	if err := m.Run(racyProgram); err != nil {
		t.Fatal(err)
	}
	if m.Sanitizer() != nil {
		t.Error("unsanitized machine has a sanitizer")
	}
	if err := m.SanitizeErr(); err != nil {
		t.Errorf("unsanitized machine reported: %v", err)
	}
}

// Adding the flag discipline — cell 1 waits for the receive flag
// before reading the buffer — makes the same traffic clean.
func TestSanitizerFlagDisciplineClean(t *testing.T) {
	m := newSanMachine(t, true)
	err := m.Run(func(c *machine.Cell) error {
		recvFlag := c.Flags.Alloc() // same ID on every cell (SPMD)
		seg, _, err := c.AllocFloat64("buf", 8)
		if err != nil {
			return err
		}
		dst, _, err := c.AllocFloat64("dst", 8)
		if err != nil {
			return err
		}
		c.HWBarrier()
		pat := mem.Contiguous(64)
		switch c.ID() {
		case 0:
			c.PushUser(msc.Command{
				Op: msc.OpPut, Dst: 1,
				RAddr: seg.Base(), LAddr: seg.Base(),
				RStride: pat, LStride: pat,
				RecvFlag: recvFlag,
			})
		case 1:
			c.Flags.Wait(recvFlag, 1)
			c.PushUser(msc.Command{
				Op: msc.OpPut, Dst: 2,
				RAddr: dst.Base(), LAddr: seg.Base(),
				RStride: pat, LStride: pat,
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SanitizeErr(); err != nil {
		t.Fatalf("flag-disciplined program flagged: %v", err)
	}
}

// ackAndBarrier reproduces the paper's S2.2 "Ack & Barrier" scenario
// at machine level: cell 0 PUTs into cell 1, everyone barriers, then
// cell 2 GETs the buffer. Without an acknowledgement the barrier does
// NOT order the in-flight PUT against the GET's reply read; with the
// ack round trip (a GET with remote address 0) it does.
func ackAndBarrier(withAck bool) func(c *machine.Cell) error {
	return func(c *machine.Cell) error {
		ackFlag := c.Flags.Alloc()
		getFlag := c.Flags.Alloc()
		seg, _, err := c.AllocFloat64("buf", 8)
		if err != nil {
			return err
		}
		out, _, err := c.AllocFloat64("out", 8)
		if err != nil {
			return err
		}
		c.HWBarrier()
		pat := mem.Contiguous(64)
		if c.ID() == 0 {
			c.PushUser(msc.Command{
				Op: msc.OpPut, Dst: 1,
				RAddr: seg.Base(), LAddr: seg.Base(),
				RStride: pat, LStride: pat,
			})
			if withAck {
				// Acknowledge: a GET of zero bytes round-trips behind the
				// PUT on the same in-order channel (S4.1).
				c.PushUser(msc.Command{Op: msc.OpGet, Dst: 1, RecvFlag: ackFlag})
				c.Flags.Wait(ackFlag, 1)
			}
		}
		c.HWBarrier()
		if c.ID() == 2 {
			c.PushUser(msc.Command{
				Op: msc.OpGet, Dst: 1,
				RAddr: seg.Base(), LAddr: out.Base(),
				RStride: pat, LStride: pat,
				RecvFlag: getFlag,
			})
			c.Flags.Wait(getFlag, 1)
		}
		return nil
	}
}

func TestSanitizerAckAndBarrier(t *testing.T) {
	if !raceDetectorEnabled { // the ack-less half races for real
		racy := newSanMachine(t, true)
		if err := racy.Run(ackAndBarrier(false)); err != nil {
			t.Fatal(err)
		}
		if racy.SanitizeErr() == nil {
			t.Fatal("barrier without acknowledgement must not order the in-flight PUT (S2.2)")
		}
	}

	clean := newSanMachine(t, true)
	if err := clean.Run(ackAndBarrier(true)); err != nil {
		t.Fatal(err)
	}
	if err := clean.SanitizeErr(); err != nil {
		t.Fatalf("Ack & Barrier program flagged: %v", err)
	}
}

// Remote stores are ordered by the automatic acknowledgement fence.
func TestSanitizerRemoteStoreFence(t *testing.T) {
	m := newSanMachine(t, true)
	err := m.Run(func(c *machine.Cell) error {
		seg, data, err := c.AllocFloat64("slot", 1)
		if err != nil {
			return err
		}
		c.HWBarrier()
		if c.ID() == 0 {
			data[0] = 41
			c.RemoteStore(1, seg.Base(), seg.Base(), 8)
			c.FenceRemoteStores()
			// Scratch reuse after the fence is ordered behind the
			// store's capture read.
			data[0] = 42
			c.SanWrite(seg.Base(), mem.Contiguous(8), "scratch rewrite")
			c.RemoteStore(1, seg.Base(), seg.Base(), 8)
			c.Flags.Wait(mc.RemoteAckFlagID, 2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SanitizeErr(); err != nil {
		t.Fatalf("fenced remote stores flagged: %v", err)
	}
}
