package machine

import (
	"errors"
	"testing"

	"ap1000plus/internal/fault"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/topology"
)

func mustPlan(t *testing.T, spec string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// assertLinksDrained checks the post-Run reliable-delivery invariant
// via the exported checker (see Machine.DrainInvariantErr).
func assertLinksDrained(t *testing.T, m *Machine) {
	t.Helper()
	if err := m.DrainInvariantErr(); err != nil {
		t.Error(err)
	}
}

// TestSeenDrainsUnderReorder: a sustained reorder plan punches holes
// in every dedup window; after Run the windows must be empty — the
// regression this pins is seen maps retaining entries (or growing for
// the rest of the run) once a hole forms.
func TestSeenDrainsUnderReorder(t *testing.T) {
	m := newMachine(t, Config{Fault: mustPlan(t, "reorder=0.25,seed=13")})
	// Distinct source and sink buffers per cell: segs[me] is the target
	// of my predecessor's PUTs while srcs[me] feeds my own, so the ring
	// never reads a buffer another cell is delivering into.
	segs := make([]*mem.Segment, m.Cells())
	srcs := make([]*mem.Segment, m.Cells())
	for id := 0; id < m.Cells(); id++ {
		seg, _, err := m.Cell(topology.CellID(id)).AllocFloat64("buf", 8)
		if err != nil {
			t.Fatal(err)
		}
		segs[id] = seg
		src, _, err := m.Cell(topology.CellID(id)).AllocFloat64("src", 8)
		if err != nil {
			t.Fatal(err)
		}
		srcs[id] = src
	}
	err := m.Run(func(c *Cell) error {
		next := topology.CellID((int(c.ID()) + 1) % m.Cells())
		flag := c.Flags.Alloc()
		for i := 0; i < 200; i++ {
			c.PushUser(msc.Command{
				Op: msc.OpPut, Dst: next,
				RAddr: segs[next].Base(), LAddr: srcs[c.ID()].Base(),
				RStride: mem.Contiguous(64), LStride: mem.Contiguous(64),
				SendFlag: flag,
			})
		}
		c.Flags.Wait(flag, 200)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FaultErr(); err != nil {
		t.Fatal(err)
	}
	assertLinksDrained(t, m)
}

// TestSeenDrainsAfterBudgetExhaustion: a dead link abandons packets at
// the retry budget, leaving permanent sender-side sequence holes.
// Reconciliation at drain must collapse them so the dedup state still
// ends empty — abandoned seqs must not leak.
func TestSeenDrainsAfterBudgetExhaustion(t *testing.T) {
	m := newMachine(t, Config{Fault: mustPlan(t, "link:0:1:drop=0.5,budget=3,seed=3")})
	segs := make([]*mem.Segment, m.Cells())
	for id := 0; id < m.Cells(); id++ {
		seg, _, err := m.Cell(topology.CellID(id)).AllocFloat64("buf", 8)
		if err != nil {
			t.Fatal(err)
		}
		segs[id] = seg
	}
	err := m.Run(func(c *Cell) error {
		if c.ID() != 0 {
			return nil
		}
		for i := 0; i < 100; i++ {
			c.PushUser(msc.Command{
				Op: msc.OpPut, Dst: 1,
				RAddr: segs[1].Base(), LAddr: segs[0].Base(),
				RStride: mem.Contiguous(64), LStride: mem.Contiguous(64),
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ferr := m.FaultErr()
	if ferr == nil {
		t.Fatal("half-dead link with budget 3 produced no CellFault")
	}
	var cf *CellFault
	if !errors.As(ferr, &cf) {
		t.Fatalf("FaultErr = %v, want *CellFault", ferr)
	}
	assertLinksDrained(t, m)
}

// TestAtomicExactlyOnceUnderDup: duplicated atomic requests must be
// served from the replay cache, never re-executed — the counter lands
// on the exact total and the replay counter shows the cache fired.
func TestAtomicExactlyOnceUnderDup(t *testing.T) {
	m := newMachine(t, Config{Observe: true, Fault: mustPlan(t, "dup=0.2,seed=7")})
	addr := allocWords(t, m)
	const iters = 150
	np := m.Cells()
	err := m.Run(func(c *Cell) error {
		for i := 0; i < iters; i++ {
			if _, err := c.FetchAdd(0, addr, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FaultErr(); err != nil {
		t.Fatal(err)
	}
	total, err := m.Cell(0).Mem.LoadWord8(addr)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(np * iters); total != want {
		t.Fatalf("final counter = %d, want %d (duplicate re-executed an RMW)", total, want)
	}
	mt := m.Metrics()
	tot := mt.Totals()
	if tot.AtomicsExecuted != int64(np*iters) {
		t.Errorf("AtomicsExecuted = %d, want %d", tot.AtomicsExecuted, np*iters)
	}
	if tot.Dedups == 0 {
		t.Error("dup plan fired no dedups")
	}
	assertLinksDrained(t, m)
}

// TestReplayCacheBounded: far more atomics than the window on one link
// must leave at most atomicReplayWindow cached results.
func TestReplayCacheBounded(t *testing.T) {
	m := newMachine(t, Config{Fault: mustPlan(t, "seed=1")})
	addr := allocWords(t, m)
	err := m.Run(func(c *Cell) error {
		if c.ID() != 1 {
			return nil
		}
		for i := 0; i < 3*atomicReplayWindow; i++ {
			if _, err := c.FetchAdd(0, addr, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	l := &m.rel.links[1*m.rel.cells+0]
	l.mu.Lock()
	n := len(l.results)
	l.mu.Unlock()
	if n > atomicReplayWindow {
		t.Fatalf("replay cache holds %d results, bound is %d", n, atomicReplayWindow)
	}
	if n == 0 {
		t.Fatal("replay cache cached nothing")
	}
	assertLinksDrained(t, m)
}
