package machine

import (
	"sync"
	"testing"

	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
)

// allocWord allocates one 8-byte word on every cell and returns the
// (identical) base address.
func allocWords(t *testing.T, m *Machine) mem.Addr {
	t.Helper()
	var base mem.Addr
	for id := 0; id < m.Cells(); id++ {
		seg, _, err := m.Cell(topology.CellID(id)).AllocFloat64("word", 1)
		if err != nil {
			t.Fatal(err)
		}
		if id == 0 {
			base = seg.Base()
		} else if seg.Base() != base {
			t.Fatalf("cell %d word at %#x, cell 0 at %#x", id, seg.Base(), base)
		}
	}
	return base
}

// TestAtomicFetchAdd: every cell hammers one word on cell 0; the final
// value is the total and the fetched values are a permutation of the
// intermediate sums (each observed exactly once).
func TestAtomicFetchAdd(t *testing.T) {
	m := newMachine(t, Config{Observe: true})
	addr := allocWords(t, m)
	const iters = 50
	np := m.Cells()
	fetched := make([][]int64, np)
	err := m.Run(func(c *Cell) error {
		for i := 0; i < iters; i++ {
			v, err := c.FetchAdd(0, addr, 1)
			if err != nil {
				return err
			}
			fetched[c.ID()] = append(fetched[c.ID()], v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total, err := m.Cell(0).Mem.LoadWord8(addr)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(np * iters); total != want {
		t.Fatalf("final counter = %d, want %d", total, want)
	}
	seen := make(map[int64]bool)
	for id, vals := range fetched {
		if len(vals) != iters {
			t.Fatalf("cell %d fetched %d values, want %d", id, len(vals), iters)
		}
		for _, v := range vals {
			if v < 0 || v >= int64(np*iters) || seen[v] {
				t.Fatalf("cell %d fetched %d: out of range or duplicated", id, v)
			}
			seen[v] = true
		}
	}
	mt := m.Metrics()
	tot := mt.Totals()
	if tot.Atomics != int64(np*iters) {
		t.Errorf("Atomics = %d, want %d", tot.Atomics, np*iters)
	}
	if tot.AtomicsExecuted != int64(np*iters) {
		t.Errorf("AtomicsExecuted = %d, want %d", tot.AtomicsExecuted, np*iters)
	}
}

// TestAtomicOpsSemantics drives each operation once from a single cell
// and checks the RMW semantics against the word in cell 1's memory.
func TestAtomicOpsSemantics(t *testing.T) {
	m := newMachine(t, Config{})
	addr := allocWords(t, m)
	err := m.Run(func(c *Cell) error {
		if c.ID() != 0 {
			return nil
		}
		if old, err := c.Swap(1, addr, 40); err != nil || old != 0 {
			t.Errorf("Swap = (%d, %v), want (0, nil)", old, err)
		}
		if old, err := c.FetchAdd(1, addr, 2); err != nil || old != 40 {
			t.Errorf("FetchAdd = (%d, %v), want (40, nil)", old, err)
		}
		// Failed CAS: compare value mismatches, word unchanged.
		if old, err := c.CompareAndSwap(1, addr, 7, 99); err != nil || old != 42 {
			t.Errorf("failed CAS = (%d, %v), want (42, nil)", old, err)
		}
		// Successful CAS.
		if old, err := c.CompareAndSwap(1, addr, 42, -5); err != nil || old != 42 {
			t.Errorf("CAS = (%d, %v), want (42, nil)", old, err)
		}
		// Min against -5 with a larger value: no change.
		c.AtomicMin(1, addr, 10)
		// Max with a larger value: stores it.
		c.AtomicMax(1, addr, 17)
		c.FenceAtomics()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	word, err := m.Cell(1).Mem.LoadWord8(addr)
	if err != nil {
		t.Fatal(err)
	}
	if int64(word) != 17 {
		t.Fatalf("final word = %d, want 17", int64(word))
	}
}

// TestAtomicFence: fire-and-forget adds from every cell, fenced; the
// total must be exact with no fetching round trips.
func TestAtomicFence(t *testing.T) {
	m := newMachine(t, Config{})
	addr := allocWords(t, m)
	const iters = 100
	np := m.Cells()
	err := m.Run(func(c *Cell) error {
		for i := 0; i < iters; i++ {
			c.AtomicAdd(0, addr, 3)
		}
		if got := c.AtomicsIssued(); got != iters {
			t.Errorf("cell %d AtomicsIssued = %d, want %d", c.ID(), got, iters)
		}
		c.FenceAtomics()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total, err := m.Cell(0).Mem.LoadWord8(addr)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(3 * np * iters); total != want {
		t.Fatalf("final counter = %d, want %d", total, want)
	}
}

// TestAtomicPageFault: an atomic to an unmapped address faults the
// owner and errors the requester instead of hanging or corrupting.
func TestAtomicPageFault(t *testing.T) {
	m := newMachine(t, Config{})
	allocWords(t, m)
	err := m.Run(func(c *Cell) error {
		if c.ID() != 0 {
			return nil
		}
		if _, err := c.FetchAdd(1, mem.Addr(1<<30), 1); err == nil {
			t.Error("FetchAdd to unmapped address succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cell(1).OS.InterruptCounts()["page-fault"] == 0 {
		t.Error("owner took no page-fault interrupt")
	}
}

// TestAtomicCombining: the combined machine produces the identical
// final count and the same exactly-once fetch multiset as the plain
// one, while absorbing requests into stations.
func TestAtomicCombining(t *testing.T) {
	run := func(combining bool) (uint64, map[int64]int, int64) {
		m := newMachine(t, Config{Width: 4, Height: 4, Observe: true, Combining: combining})
		addr := allocWords(t, m)
		const iters = 200
		var mu sync.Mutex
		fetched := make(map[int64]int)
		err := m.Run(func(c *Cell) error {
			for i := 0; i < iters; i++ {
				v, err := c.FetchAdd(0, addr, 1)
				if err != nil {
					return err
				}
				mu.Lock()
				fetched[v]++
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		total, err := m.Cell(0).Mem.LoadWord8(addr)
		if err != nil {
			t.Fatal(err)
		}
		mt := m.Metrics()
		return total, fetched, mt.Totals().AtomicsCombined
	}
	plainTotal, plainFetched, plainCombined := run(false)
	combTotal, combFetched, combCombined := run(true)
	if plainCombined != 0 {
		t.Errorf("uncombined run reports %d combines", plainCombined)
	}
	if combTotal != plainTotal {
		t.Fatalf("combined total = %d, uncombined = %d", combTotal, plainTotal)
	}
	for v, n := range plainFetched {
		if n != 1 {
			t.Fatalf("uncombined run fetched %d x%d times", v, n)
		}
		if combFetched[v] != 1 {
			t.Fatalf("combined run fetched %d x%d times, want exactly once", v, combFetched[v])
		}
	}
	if len(combFetched) != len(plainFetched) {
		t.Fatalf("combined run fetched %d distinct values, uncombined %d", len(combFetched), len(plainFetched))
	}
	t.Logf("combined run absorbed %d of %d requests", combCombined, 16*200)
}

// TestAtomicCombiningMinMax: combinable min/max fold correctly through
// stations.
func TestAtomicCombiningMinMax(t *testing.T) {
	m := newMachine(t, Config{Width: 4, Height: 4, Combining: true})
	addr := allocWords(t, m)
	np := m.Cells()
	err := m.Run(func(c *Cell) error {
		// Max over 100*id: final word must be 100*(np-1).
		c.AtomicMax(0, addr, int64(100*int(c.ID())))
		c.FenceAtomics()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	word, err := m.Cell(0).Mem.LoadWord8(addr)
	if err != nil {
		t.Fatal(err)
	}
	if int64(word) != int64(100*(np-1)) {
		t.Fatalf("max fold = %d, want %d", int64(word), 100*(np-1))
	}
}

// TestApplyAtomicTable pins the RMW algebra the owner executes.
func TestApplyAtomicTable(t *testing.T) {
	cases := []struct {
		op           mc.AtomicOp
		old, operand int64
		cmp          int64
		stored       int64
	}{
		{mc.AtomicFetchAdd, 10, 5, 0, 15},
		{mc.AtomicAdd, -3, 3, 0, 0},
		{mc.AtomicCAS, 7, 99, 7, 99},
		{mc.AtomicCAS, 7, 99, 8, 7},
		{mc.AtomicSwap, 1, 2, 0, 2},
		{mc.AtomicMin, 5, -5, 0, -5},
		{mc.AtomicMin, -5, 5, 0, -5},
		{mc.AtomicMax, 5, -5, 0, 5},
		{mc.AtomicMax, -5, 5, 0, 5},
	}
	for _, c := range cases {
		stored, fetched := mc.ApplyAtomic(c.op, c.old, c.operand, c.cmp)
		if stored != c.stored || fetched != c.old {
			t.Errorf("ApplyAtomic(%s, %d, %d, %d) = (%d, %d), want (%d, %d)",
				c.op, c.old, c.operand, c.cmp, stored, fetched, c.stored, c.old)
		}
	}
}
