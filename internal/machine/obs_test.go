package machine

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/obs"
	"ap1000plus/internal/topology"
)

// runKnownExchange drives a fixed, fully deterministic communication
// pattern: cell 0 issues a contiguous PUT (64 B) and a stride PUT
// (32 B) to cell 1, a GET (32 B) from cell 2, and an acknowledge GET
// (address 0) behind the PUTs; everyone barriers at the end.
func runKnownExchange(t *testing.T, m *Machine) {
	t.Helper()
	segs := make([]*mem.Segment, 4)
	for id := 0; id < 4; id++ {
		seg, data, err := m.Cell(topology.CellID(id)).AllocFloat64("buf", 64)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			data[i] = float64(id*1000 + i)
		}
		segs[id] = seg
	}
	rf0 := m.Cell(0).Flags.Alloc()
	rf1 := m.Cell(1).Flags.Alloc()
	err := m.Run(func(c *Cell) error {
		if c.ID() == 0 {
			c.PushUser(msc.Command{
				Op: msc.OpPut, Dst: 1,
				RAddr: segs[1].Base(), LAddr: segs[0].Base(),
				RStride: mem.Contiguous(64), LStride: mem.Contiguous(64),
				RecvFlag: rf1,
			})
			c.PushUser(msc.Command{
				Op: msc.OpPut, Dst: 1,
				RAddr: segs[1].Base() + 64, LAddr: segs[0].Base(),
				RStride:  mem.Contiguous(32),
				LStride:  mem.Stride{ItemSize: 8, Count: 4, Skip: 24},
				RecvFlag: rf1,
			})
			c.PushUser(msc.Command{
				Op: msc.OpGet, Dst: 2,
				RAddr: segs[2].Base(), LAddr: segs[0].Base() + 256,
				RStride: mem.Contiguous(32), LStride: mem.Contiguous(32),
				RecvFlag: rf0,
			})
			c.PushUser(msc.Command{
				Op: msc.OpGet, Dst: 1,
				RStride: mem.Contiguous(1), LStride: mem.Contiguous(1),
				RecvFlag: mc.AckFlagID,
			})
			c.Flags.Wait(mc.AckFlagID, 1)
			c.Flags.Wait(rf0, 1)
		}
		if c.ID() == 1 {
			c.Flags.Wait(rf1, 2)
		}
		c.HWBarrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMetricsCountersKnownExchange pins the counter snapshot of the
// known exchange exactly: every deterministic field, per cell and in
// total.
func TestMetricsCountersKnownExchange(t *testing.T) {
	m := newMachine(t, Config{Observe: true})
	runKnownExchange(t, m)
	mt := m.Metrics()

	tot := mt.Totals()
	if tot.Put != 1 || tot.PutS != 1 || tot.Get != 1 || tot.GetS != 0 || tot.AckGet != 1 {
		t.Errorf("issue totals = %+v", tot)
	}
	if tot.Send != 0 || tot.RemoteStore != 0 || tot.RemoteLoad != 0 {
		t.Errorf("unexpected send/remote issues: %+v", tot)
	}
	if tot.PutBytes != 96 || tot.GetBytes != 32 || tot.SendBytes != 0 {
		t.Errorf("byte totals = put %d get %d send %d", tot.PutBytes, tot.GetBytes, tot.SendBytes)
	}
	// Three data-bearing deliveries: two PUTs into cell 1, the GET
	// reply into cell 0. The acknowledge GET carries no data and must
	// not count as a receive DMA.
	if tot.RecvDMAs != 3 || tot.DeliveredBytes != 128 {
		t.Errorf("recv DMAs = %d (%d bytes), want 3 (128)", tot.RecvDMAs, tot.DeliveredBytes)
	}
	if tot.Barriers != 4 {
		t.Errorf("barrier arrivals = %d, want 4", tot.Barriers)
	}
	if tot.Interrupts != 0 || tot.Spills != 0 || tot.Refills != 0 {
		t.Errorf("interrupts/spills = %+v", tot)
	}

	// Per-cell attribution.
	c0, c1, c2 := mt.Cells[0].CellSnapshot, mt.Cells[1].CellSnapshot, mt.Cells[2].CellSnapshot
	if c0.Put != 1 || c0.PutS != 1 || c0.Get != 1 || c0.AckGet != 1 {
		t.Errorf("cell 0 issues = %+v", c0)
	}
	if c0.RecvDMAs != 1 || c0.DeliveredBytes != 32 {
		t.Errorf("cell 0 recv = %d DMAs, %d bytes", c0.RecvDMAs, c0.DeliveredBytes)
	}
	if c1.RecvDMAs != 2 || c1.DeliveredBytes != 96 {
		t.Errorf("cell 1 recv = %d DMAs, %d bytes", c1.RecvDMAs, c1.DeliveredBytes)
	}
	if c2.Put != 0 || c2.Get != 0 || c2.RecvDMAs != 0 {
		t.Errorf("cell 2 should only serve the GET: %+v", c2)
	}

	// Wire accounting: PUT + stride PUT + GET req/reply + ack req/reply.
	if mt.TNet.Messages != 6 {
		t.Errorf("tnet messages = %d, want 6", mt.TNet.Messages)
	}
	if mt.HWBarriers != 1 {
		t.Errorf("hw barriers = %d, want 1", mt.HWBarriers)
	}

	// Counter report renders and mentions the headline numbers.
	var buf bytes.Buffer
	if err := mt.Format(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PUT=1", "PUTS=1", "GET=1", "ackGET=1", "delivered=128", "hw-barriers=1"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %q:\n%s", want, buf.String())
		}
	}
}

// TestMetricsWithoutObserve: an unobserved machine has a nil Observer
// and an all-zero obs snapshot, but the hardware-kept state (queue
// stats, flag increments) is still populated.
func TestMetricsWithoutObserve(t *testing.T) {
	m := newMachine(t, Config{})
	if m.Observer() != nil {
		t.Fatal("observer must be nil without Config.Observe")
	}
	runKnownExchange(t, m)
	mt := m.Metrics()
	if tot := mt.Totals(); tot != (obs.CellSnapshot{}) {
		t.Errorf("unobserved counters non-zero: %+v", tot)
	}
	if mt.Cells[0].Queues.UserSend.Pushes != 4 {
		t.Errorf("queue pushes = %d, want 4", mt.Cells[0].Queues.UserSend.Pushes)
	}
	if mt.Cells[1].FlagIncrements == 0 {
		t.Error("flag increments missing")
	}
}

// TestTimelineFromKnownExchange checks the functional machine's
// timeline: valid trace JSON, metadata for every cell, issue instants
// and controller slices present, and X slices properly nested per
// track.
func TestTimelineFromKnownExchange(t *testing.T) {
	tl := obs.NewTimeline()
	m := newMachine(t, Config{Timeline: tl})
	if m.Observer() == nil {
		t.Fatal("Timeline must imply Observe")
	}
	runKnownExchange(t, m)

	ev := tl.Events()
	if err := obs.CheckSliceNesting(ev); err != nil {
		t.Errorf("slice nesting: %v", err)
	}
	procs := map[int]bool{}
	cats := map[string]int{}
	for _, e := range ev {
		if e.Ph == "M" && e.Name == "process_name" {
			procs[e.Pid] = true
		}
		cats[e.Cat]++
	}
	for id := 0; id < 4; id++ {
		if !procs[id] {
			t.Errorf("cell %d has no process metadata", id)
		}
	}
	if cats["issue"] != 4 {
		t.Errorf("issue instants = %d, want 4", cats["issue"])
	}
	// Every processed command emits a controller slice: 4 issued + 2
	// GET replies served.
	if cats["ctl"] != 6 {
		t.Errorf("ctl slices = %d, want 6", cats["ctl"])
	}
	if cats["dma"] != 3 {
		t.Errorf("recv-dma instants = %d, want 3", cats["dma"])
	}

	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("timeline JSON invalid: %v", err)
	}
	if len(f.TraceEvents) != len(ev) {
		t.Errorf("JSON has %d events, collector has %d", len(f.TraceEvents), len(ev))
	}
}
