package machine

import (
	"fmt"
	"io"
	"time"

	"ap1000plus/internal/bnet"
	"ap1000plus/internal/fault"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/obs"
	"ap1000plus/internal/tnet"
)

// CellMetrics is the full observability snapshot for one cell: the
// obs hot-path counters plus the state the hardware already kept
// (queue statistics, OS interrupt log, flag increments, cache
// invalidations).
type CellMetrics struct {
	obs.CellSnapshot
	// Queues are the MSC+'s five queue counters, including the
	// high-water marks of the hardware FIFOs.
	Queues msc.MSCStats
	// OSInterrupts counts interrupts by cause name.
	OSInterrupts map[string]int64
	// FlagIncrements is the MC's fetch-and-increment total.
	FlagIncrements int64
	// CacheInvalidations counts cache lines invalidated by receive DMA.
	CacheInvalidations int64
}

// Metrics is a machine-wide observability snapshot, JSON-encodable
// for tooling and renderable as text via Format.
type Metrics struct {
	Cells []CellMetrics
	TNet  tnet.Stats
	BNet  bnet.Stats
	// HWBarriers counts completed S-net barriers, summed over every
	// partition's barrier domain (one domain on an unpartitioned
	// machine).
	HWBarriers int64
	// WallNanos is wall-clock time since machine construction.
	WallNanos int64
	// Fault summarizes fault injection and the reliable-delivery
	// response; nil when the machine ran without a fault plan (so the
	// snapshot's shape is unchanged for fault-free machines).
	Fault *FaultMetrics
}

// FaultMetrics aggregates the fault layer machine-wide: the injector's
// decision counters plus the reliable-delivery totals accumulated in
// the per-cell obs counters.
type FaultMetrics struct {
	fault.Stats
	Retransmits     int64
	BackoffNanos    int64
	Dedups          int64
	CorruptDetected int64
	CellFaults      int64
}

// Metrics snapshots the machine's counters. The obs fields are only
// populated when the machine was built with Config.Observe (or a
// Timeline); queue/interrupt/flag state is always available because
// the hardware models keep it regardless.
func (m *Machine) Metrics() Metrics {
	mt := Metrics{
		Cells:      make([]CellMetrics, len(m.cells)),
		TNet:       m.tnet.Stats(),
		BNet:       m.bnet.Stats(),
		HWBarriers: m.snet.Count(),
	}
	if m.obs != nil {
		mt.WallNanos = time.Since(m.obs.Start()).Nanoseconds()
	}
	for i, c := range m.cells {
		cm := &mt.Cells[i]
		if m.obs != nil {
			cm.CellSnapshot = m.obs.Cell(i).Snapshot()
		}
		cm.Queues = c.MSC.Stats()
		cm.OSInterrupts = c.OS.InterruptCounts()
		cm.FlagIncrements = c.Flags.Increments()
		cm.CacheInvalidations = c.CacheInvalidations()
	}
	if m.rel != nil {
		t := mt.Totals()
		mt.Fault = &FaultMetrics{
			Stats:           m.rel.inj.Stats(),
			Retransmits:     t.Retransmits,
			BackoffNanos:    t.BackoffNanos,
			Dedups:          t.Dedups,
			CorruptDetected: t.CorruptDetected,
			CellFaults:      t.CellFaults,
		}
	}
	return mt
}

// PartitionMetrics is Metrics restricted to one partition: the cell
// snapshots of that partition's cells and its own barrier-domain
// count. The T-net and B-net counters stay zero — they are sharded by
// delivery shard and bus, not by partition, so a per-tenant network
// split does not exist; use the machine-wide Metrics for those.
func (m *Machine) PartitionMetrics(part int) Metrics {
	p := m.parts[part]
	mt := Metrics{
		Cells:      make([]CellMetrics, p.n),
		HWBarriers: m.snet.Domain(part).Count(),
	}
	if m.obs != nil {
		mt.WallNanos = time.Since(m.obs.Start()).Nanoseconds()
	}
	for i := 0; i < p.n; i++ {
		c := m.cells[p.base+i]
		cm := &mt.Cells[i]
		if m.obs != nil {
			cm.CellSnapshot = m.obs.Cell(p.base + i).Snapshot()
		}
		cm.Queues = c.MSC.Stats()
		cm.OSInterrupts = c.OS.InterruptCounts()
		cm.FlagIncrements = c.Flags.Increments()
		cm.CacheInvalidations = c.CacheInvalidations()
	}
	if m.rel != nil {
		t := mt.Totals()
		mt.Fault = &FaultMetrics{
			Stats:           m.rel.inj.Stats(),
			Retransmits:     t.Retransmits,
			BackoffNanos:    t.BackoffNanos,
			Dedups:          t.Dedups,
			CorruptDetected: t.CorruptDetected,
			CellFaults:      t.CellFaults,
		}
	}
	return mt
}

// Totals sums the per-cell obs counters.
func (mt *Metrics) Totals() obs.CellSnapshot {
	var t obs.CellSnapshot
	for i := range mt.Cells {
		t.Add(mt.Cells[i].CellSnapshot)
	}
	return t
}

// QueueHighWater reports the deepest hardware-FIFO occupancy seen on
// any queue of any cell.
func (mt *Metrics) QueueHighWater() int {
	hw := 0
	for i := range mt.Cells {
		q := &mt.Cells[i].Queues
		for _, s := range []msc.QueueStats{q.UserSend, q.SysSend, q.RemoteAccess, q.GetReply, q.RemoteLoadReply} {
			if s.MaxDepth > hw {
				hw = s.MaxDepth
			}
		}
	}
	return hw
}

// queueSpills sums DRAM spills across all queues of all cells.
func (mt *Metrics) queueSpills() (spills, refillIntrs int64) {
	for i := range mt.Cells {
		q := &mt.Cells[i].Queues
		for _, s := range []msc.QueueStats{q.UserSend, q.SysSend, q.RemoteAccess, q.GetReply, q.RemoteLoadReply} {
			spills += s.Spills
			refillIntrs += s.Interrupts
		}
	}
	return
}

// interruptTotals merges the per-cell OS interrupt counts.
func (mt *Metrics) interruptTotals() map[string]int64 {
	out := map[string]int64{}
	for i := range mt.Cells {
		for k, v := range mt.Cells[i].OSInterrupts {
			out[k] += v
		}
	}
	return out
}

// Format renders the counter report as text, machine totals first,
// in the style of the experiment tables.
func (mt *Metrics) Format(w io.Writer) error {
	t := mt.Totals()
	spills, refillIntrs := mt.queueSpills()
	intr := mt.interruptTotals()
	var flagIncs, inval int64
	for i := range mt.Cells {
		flagIncs += mt.Cells[i].FlagIncrements
		inval += mt.Cells[i].CacheInvalidations
	}
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("machine metrics (%d cells, %.3f ms wall)\n", len(mt.Cells), float64(mt.WallNanos)/1e6); err != nil {
		return err
	}
	p("  issues      PUT=%d PUTS=%d GET=%d GETS=%d ackGET=%d SEND=%d rstore=%d rload=%d\n",
		t.Put, t.PutS, t.Get, t.GetS, t.AckGet, t.Send, t.RemoteStore, t.RemoteLoad)
	p("  bytes       put=%d get=%d send=%d delivered=%d (recv DMAs %d)\n",
		t.PutBytes, t.GetBytes, t.SendBytes, t.DeliveredBytes, t.RecvDMAs)
	p("  tnet        msgs=%d bytes=%d mean-dist=%.2f hops\n",
		mt.TNet.Messages, mt.TNet.Bytes, mt.TNet.MeanDistance())
	p("  bnet        bcasts=%d scatters=%d gathers=%d bytes=%d\n",
		mt.BNet.Broadcasts, mt.BNet.Scatters, mt.BNet.Gathers, mt.BNet.Bytes)
	p("  queues      high-water=%d cmds, spills=%d, refill-intrs=%d\n",
		mt.QueueHighWater(), spills, refillIntrs)
	p("  interrupts  total=%d %v\n", t.Interrupts, intr)
	p("  sync        flag-waits=%d (%.3f ms stalled), barriers=%d (%.3f ms stalled), hw-barriers=%d\n",
		t.FlagWaits, float64(t.FlagWaitNanos)/1e6, t.Barriers, float64(t.BarrierStallNanos)/1e6, mt.HWBarriers)
	if t.DSMHits|t.DSMMisses|t.DSMEvictions|t.DSMInvalsSent|t.DSMInvalsRecv != 0 {
		p("  dsm-cache   hits=%d misses=%d evictions=%d invals-sent=%d invals-recv=%d\n",
			t.DSMHits, t.DSMMisses, t.DSMEvictions, t.DSMInvalsSent, t.DSMInvalsRecv)
	}
	if t.Atomics|t.AtomicsExecuted|t.AtomicsCombined|t.AtomicReplays != 0 {
		p("  atomics     issued=%d executed=%d combined=%d replays=%d\n",
			t.Atomics, t.AtomicsExecuted, t.AtomicsCombined, t.AtomicReplays)
	}
	if t.AggPushes|t.AggPacketsSent|t.AggAdvances|t.AggApplied != 0 {
		p("  pgas-agg    pushes=%d packets-sent=%d advances=%d applied=%d\n",
			t.AggPushes, t.AggPacketsSent, t.AggAdvances, t.AggApplied)
	}
	if err := p("  mc          flag-incs=%d, cache-lines-invalidated=%d\n", flagIncs, inval); err != nil || mt.Fault == nil {
		return err
	}
	f := mt.Fault
	return p("  fault       drops=%d dups=%d reorders=%d corrupts=%d delays=%d | retransmits=%d (%.3f ms backoff) dedups=%d corrupt-drops=%d cell-faults=%d\n",
		f.Drops, f.Dups, f.Reorders, f.Corrupts, f.Delays,
		f.Retransmits, float64(f.BackoffNanos)/1e6, f.Dedups, f.CorruptDetected, f.CellFaults)
}
