//go:build race

package machine_test

// raceDetectorEnabled reports whether this test binary was built with
// the Go race detector. The seeded-race sanitizer tests run genuinely
// conflicting DMA accesses on two controller goroutines — exactly the
// races apsan exists to catch — and the Go race detector, being a
// happens-before checker too, would (correctly) flag them. Those
// tests skip themselves under -race; apsan's detection is asserted by
// plain `go test`.
const raceDetectorEnabled = true
