package machine

import (
	"fmt"

	"ap1000plus/internal/bnet"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/obs"
	"ap1000plus/internal/tnet"
	"ap1000plus/internal/topology"
)

// drainBatch is how many commands the controller pops per activation:
// large enough to amortize the queue lock and priority scan over a
// committed CommandList, small enough that an arriving reply never
// waits behind more than one batch.
const drainBatch = 16

// controller is the per-cell MSC+ send controller loop: it drains the
// cell's queues in hardware priority order and executes each command.
// "Message handling must be independent of processor execution"
// (S3.2) — this goroutine is that independence. Commands are popped a
// batch at a time (NextBatch), so a committed CommandList costs one
// queue transaction on the drain side too.
func (m *Machine) controller(c *Cell) {
	var buf [drainBatch]msc.Command
	for {
		n, ok := c.MSC.NextBatch(buf[:])
		if !ok {
			return
		}
		for i := 0; i < n; i++ {
			m.process(c, buf[i])
		}
		// Uncount the batch only after every command in it processed:
		// the partition's quiesce counter must never read zero while a
		// command is still executing (work a command spawns is counted
		// before its own decrement lands).
		c.part.q.add(-int64(n))
	}
}

// process executes one command popped from c's queues. When the
// machine is sanitized, the controller thread first acquires the
// clock the issuer released into the command; everything downstream
// of this call — including synchronous packet delivery on the
// destination cell — executes as this controller's logical thread.
func (m *Machine) process(c *Cell, cmd msc.Command) {
	// Only this cell's controller goroutine emits slices on its MSC
	// track, so the X slices nest cleanly.
	var tl *obs.Timeline
	var start float64
	if o := m.obs; o != nil {
		if tl = o.Timeline(); tl != nil {
			start = o.NowUs()
			defer func() {
				tl.Slice(int(c.id), obs.TidMSC, "ctl", cmd.Op.String(), start, m.obs.NowUs()-start)
			}()
		}
	}
	exec := -1
	if s := m.san; s != nil {
		exec = s.Ctl(int(c.id))
		s.AcquireHandle(exec, cmd.San)
	}
	switch cmd.Op {
	case msc.OpPut, msc.OpSend, msc.OpRemoteStore:
		m.sendData(c, cmd, exec)
	case msc.OpGet, msc.OpRemoteLoad:
		// Request messages carry no payload; route them out.
		m.xmit(c, tnet.Packet{Head: cmd, SanTid: exec})
	case msc.OpAtomic:
		m.routeAtomic(c, cmd, exec)
	case msc.OpGetReply:
		m.reply(c, cmd, exec)
	case msc.OpRemoteLoadReply:
		m.loadReply(c, cmd, exec)
	default:
		c.OS.fault(fmt.Errorf("machine: cell %d: unknown command %v", c.id, cmd))
	}
}

// sanAccess stamps one DMA access with the executing controller's
// clock. No-op when exec < 0 (unsanitized).
func (m *Machine) sanAccess(exec int, write bool, memCell int, addr mem.Addr, pat mem.Stride, op string) {
	if s := m.san; s != nil && exec >= 0 {
		s.Access(exec, exec/2, write, memCell, uint64(addr), pat.ItemSize, pat.Count, pat.Skip, op)
	}
}

// sanFlagInc releases exec's clock into (cell, flag) ahead of the
// actual increment.
func (m *Machine) sanFlagInc(exec int, cell int, flag mc.FlagID) {
	if s := m.san; s != nil && exec >= 0 {
		s.FlagInc(exec, cell, int32(flag))
	}
}

// sendReadLabel names the send-DMA source read of a data-bearing
// command for sanitizer reports. The labels are constants: sendData
// evaluates this with the sanitizer off too, so it must not allocate.
func sendReadLabel(op msc.Op) string {
	switch op {
	case msc.OpPut:
		return "PUT source read (send DMA)"
	case msc.OpSend:
		return "SEND source read (send DMA)"
	case msc.OpRemoteStore:
		return "remote store source read (send DMA)"
	}
	return "source read (send DMA)"
}

// sendData runs the send DMA for a data-bearing command: translate
// the local address, capture the payload, raise the send flag, and
// inject the packet.
func (m *Machine) sendData(c *Cell, cmd msc.Command, exec int) {
	var payload *mem.Payload
	if cmd.LAddr != 0 && cmd.LStride.Total() > 0 {
		if _, err := c.MMU.Translate(cmd.LAddr, cmd.LStride.Extent()); err != nil {
			// "A program may specify an illegal address ... the
			// hardware must check for illegal addresses" (S3.2): the
			// faulting command interrupts the OS and is dropped.
			c.OS.interrupt(IntrPageFault)
			c.OS.fault(fmt.Errorf("machine: cell %d: send DMA: %w", c.id, err))
			return
		}
		m.sanAccess(exec, false, int(c.id), cmd.LAddr, cmd.LStride, sendReadLabel(cmd.Op))
		p, err := mem.CapturePayload(c.Mem, cmd.LAddr, cmd.LStride)
		if err != nil {
			c.OS.fault(fmt.Errorf("machine: cell %d: send DMA: %w", c.id, err))
			return
		}
		payload = p
		if s := m.san; s != nil && cmd.Op == msc.OpSend {
			// SEND payloads park in the destination's ring buffer and
			// hop to its CPU asynchronously; carry the clock along.
			payload.SetSan(s.Release(exec))
		}
	}
	// Send DMA complete: the MSC+ asks the MC to increment the send
	// flag (S4.1, "flag update combined with data transfer").
	m.sanFlagInc(exec, int(c.id), cmd.SendFlag)
	c.Flags.Inc(cmd.SendFlag)
	pkt := tnet.Packet{Head: cmd, Payload: payload, SanTid: exec}
	// PUT and remote store payloads are copied out during delivery, so
	// their buffers can recycle; SEND payloads park in the
	// destination's ring buffer and must stay alive. On the async ring
	// wire delivery may happen after this return, so ownership moves to
	// the consumer (FreeOnDeliver); on the sync wire Send delivers on
	// this goroutine and the buffer is released here. Under a fault
	// plan a copy may still sit in the reorder limbo, so the buffer is
	// left to the GC.
	if m.asyncWire && cmd.Op != msc.OpSend {
		pkt.FreeOnDeliver = true
	}
	m.xmit(c, pkt)
	if !m.asyncWire && cmd.Op != msc.OpSend && m.rel == nil {
		payload.Release()
	}
}

// reply serves a queued GET request: capture the requested range from
// local memory and send it back to the requester. The data-sending
// side's flag (cmd.SendFlag, a flag on THIS cell chosen by the
// requester) rises when the reply DMA completes.
func (m *Machine) reply(c *Cell, cmd msc.Command, exec int) {
	var payload *mem.Payload
	if cmd.RAddr != 0 {
		if _, err := c.MMU.Translate(cmd.RAddr, cmd.RStride.Extent()); err != nil {
			c.OS.interrupt(IntrPageFault)
			c.OS.fault(fmt.Errorf("machine: cell %d: GET reply: %w", c.id, err))
			return
		}
		m.sanAccess(exec, false, int(c.id), cmd.RAddr, cmd.RStride, "GET reply read (send DMA)")
		p, err := mem.CapturePayload(c.Mem, cmd.RAddr, cmd.RStride)
		if err != nil {
			c.OS.fault(fmt.Errorf("machine: cell %d: GET reply: %w", c.id, err))
			return
		}
		payload = p
	}
	m.sanFlagInc(exec, int(c.id), cmd.SendFlag)
	c.Flags.Inc(cmd.SendFlag)
	out := cmd
	out.Src = c.id
	out.Dst = cmd.Src // back to the requester
	pkt := tnet.Packet{Head: out, Payload: payload, SanTid: exec}
	// The reply is copied into the requester's memory during delivery;
	// recycle the buffer afterwards — on the async ring wire by the
	// consumer (FreeOnDeliver), on the sync wire here (unless a fault
	// plan may still be holding a copy in limbo).
	pkt.FreeOnDeliver = m.asyncWire
	m.xmit(c, pkt)
	if !m.asyncWire && m.rel == nil {
		payload.Release()
	}
}

// loadReply serves a queued remote load.
func (m *Machine) loadReply(c *Cell, cmd msc.Command, exec int) {
	var payload *mem.Payload
	if _, err := c.MMU.Translate(cmd.RAddr, cmd.RStride.Extent()); err != nil {
		c.OS.interrupt(IntrPageFault)
		c.OS.fault(fmt.Errorf("machine: cell %d: remote load: %w", c.id, err))
		// Reply with no payload so the loader unblocks with an error.
	} else {
		if cmd.CacheFill {
			// Directory registration happens BEFORE the reply is
			// captured: a store landing after this point invalidates the
			// copy the requester is about to receive, so the requester
			// never holds an untracked page.
			if h := c.dsmHooks.Load(); h != nil && h.Shared != nil {
				h.Shared(cmd.Src, cmd.RAddr, cmd.RStride.Total(), cmd.Port)
			}
		}
		if p, err := mem.CapturePayload(c.Mem, cmd.RAddr, cmd.RStride); err != nil {
			c.OS.fault(fmt.Errorf("machine: cell %d: remote load: %w", c.id, err))
		} else {
			m.sanAccess(exec, false, int(c.id), cmd.RAddr, cmd.RStride, "remote load read")
			payload = p
			if s := m.san; s != nil {
				// The reply payload crosses to the loading CPU through a
				// channel; carry the clock with it.
				payload.SetSan(s.Release(exec))
			}
		}
	}
	out := cmd
	out.Src = c.id
	out.Dst = cmd.Src
	m.xmit(c, tnet.Packet{Head: out, Payload: payload, SanTid: exec})
}

// receive is the cell's T-net receive controller (the MSC+ of the
// receiving cell): it "analyzes the header of the message and
// activates the receive DMA to write the data directly" (S4.1).
// It runs on the sending controller's goroutine; all state it touches
// is monitor-protected or owned by flag discipline, like real DMA.
// Sanitizer-wise the packet's SanTid carries that controller's
// logical thread through the delivery. It reports whether the packet
// was accepted; under a fault plan, false makes the sender retransmit.
func (c *Cell) receive(p tnet.Packet) bool {
	m := c.machine
	if r := m.rel; r != nil {
		// Reliable-delivery gate: a damaged packet is rejected before
		// it can touch memory or the dedup window; a duplicate is
		// acknowledged without re-running the DMA, the flag increment
		// or the sanitizer hooks — the effects fire exactly once.
		switch r.admit(c, p) {
		case admitReject:
			return false
		case admitDup:
			if p.Head.Op == msc.OpAtomic {
				// Exactly-once atomics: a duplicated request must not
				// re-execute the RMW, but the requester may still need the
				// result — serve it from the link's replay cache.
				c.replayAtomic(p)
			}
			return true
		}
	}
	cmd := p.Head
	exec := p.SanTid
	switch cmd.Op {
	case msc.OpPut:
		if !c.deliver(cmd, p.Payload, exec, "PUT receive DMA write") {
			return false
		}
		m.sanFlagInc(exec, int(c.id), cmd.RecvFlag)
		c.Flags.Inc(cmd.RecvFlag)
		return true

	case msc.OpSend:
		c.sinkMu.RLock()
		sink := c.sink
		c.sinkMu.RUnlock()
		if sink == nil {
			c.OS.fault(fmt.Errorf("machine: cell %d: SEND arrived with no ring buffer", c.id))
			return true
		}
		sink(cmd.Port, cmd.Src, p.Payload)
		return true

	case msc.OpGet:
		// The MSC+ "analyzes the GET request message and enters it
		// into the reply queue" — no processor involvement. The queued
		// entry is the reply to produce.
		req := cmd
		req.Op = msc.OpGetReply
		if s := m.san; s != nil {
			// The reply runs later on THIS cell's controller; hand the
			// requesting chain's clock across the queue boundary.
			req.San = s.ReleaseHandle(exec)
		}
		c.push(qGetReply, req)
		return true

	case msc.OpGetReply:
		if !c.deliver(cmd, p.Payload, exec, "GET receive DMA write") {
			return false
		}
		m.sanFlagInc(exec, int(c.id), cmd.RecvFlag)
		c.Flags.Inc(cmd.RecvFlag)
		return true

	case msc.OpRemoteStore:
		if !c.deliver(remoteStoreAsPut(cmd), p.Payload, exec, "remote store receive DMA write") {
			return false
		}
		// Directory coherence: invalidate every registered sharer of
		// the written pages BEFORE acknowledging the store, so the
		// writer's fence implies all invalidations have been applied.
		// The dedup gate above makes this fire exactly once per store
		// even when the fault plan duplicates the packet.
		if h := c.dsmHooks.Load(); h != nil && h.Stored != nil {
			h.Stored(cmd.Src, cmd.RAddr, cmd.RStride.Total())
		}
		// Acknowledge automatically (S4.2).
		ack := msc.Command{Op: msc.OpRemoteStoreAck, Src: c.id, Dst: cmd.Src}
		m.xmit(c, tnet.Packet{Head: ack, SanTid: exec})
		return true

	case msc.OpRemoteStoreAck:
		m.sanFlagInc(exec, int(c.id), mc.RemoteAckFlagID)
		c.Flags.Inc(mc.RemoteAckFlagID)
		return true

	case msc.OpRemoteLoad:
		req := cmd
		req.Op = msc.OpRemoteLoadReply
		if s := m.san; s != nil {
			req.San = s.ReleaseHandle(exec)
		}
		c.push(qRloadReply, req)
		return true

	case msc.OpRemoteLoadReply:
		c.completeLoad(cmd.Tag, p.Payload)
		return true

	case msc.OpDSMInval:
		if h := c.dsmHooks.Load(); h != nil && h.Inval != nil {
			h.Inval(cmd.Src, cmd.RAddr, topology.CellID(cmd.Tag))
		}
		if o := m.obs; o != nil {
			o.Cell(int(c.id)).DSMInvalsRecv.Add(1)
			if tl := o.Timeline(); tl != nil {
				tl.Instant(int(c.id), obs.TidMSC, "dsm", "inval-recv", o.NowUs())
			}
		}
		return true

	case msc.OpDSMEvict:
		// A sharer silently dropped its cached copy: deregister it so
		// later stores stop sending it spurious invalidations. Tag
		// carries the fill epoch of the evicted copy; the hook ignores
		// notices older than the sharer's current registration.
		if h := c.dsmHooks.Load(); h != nil && h.Evicted != nil {
			h.Evicted(cmd.Src, cmd.RAddr, cmd.Tag)
		}
		if o := m.obs; o != nil {
			if tl := o.Timeline(); tl != nil {
				tl.Instant(int(c.id), obs.TidMSC, "dsm", "evict-recv", o.NowUs())
			}
		}
		return true

	case msc.OpAtomic:
		// The owner's MC executes the RMW under the dedup gate, so it
		// fires exactly once per request, and answers inline like a
		// remote-store ack — no processor involvement.
		old, faulted := c.execAtomic(cmd)
		if r := m.rel; r != nil && !faulted {
			r.noteResult(cmd.Src, cmd.Dst, p.Head.Seq, old)
		}
		reply := msc.Command{
			Op: msc.OpAtomicReply, Src: c.id, Dst: cmd.Src,
			RAddr: cmd.RAddr, AOp: cmd.AOp, AVal: old, Tag: cmd.Tag,
		}
		if faulted {
			reply.ACmp = 1
		}
		m.xmit(c, tnet.Packet{Head: reply, SanTid: exec})
		return true

	case msc.OpAtomicReply:
		if cmd.Tag == 0 {
			// Acknowledgement of a non-fetching update: raise the
			// implicit fence flag, like a remote-store ack.
			m.sanFlagInc(exec, int(c.id), mc.AtomicAckFlagID)
			c.Flags.Inc(mc.AtomicAckFlagID)
		} else {
			c.completeAtomic(cmd.Tag, cmd.AVal, cmd.ACmp == 0, exec)
		}
		return true

	default:
		c.OS.fault(fmt.Errorf("machine: cell %d: unknown packet %v", c.id, cmd))
		return true
	}
}

// remoteStoreAsPut reshapes a remote-store header so deliver writes
// to RAddr like a PUT.
func remoteStoreAsPut(cmd msc.Command) msc.Command {
	cmd.Op = msc.OpPut
	return cmd
}

// deliver runs the receive DMA: translate the destination address and
// write the payload. A destination address of 0 (the GET-acknowledge
// convention) skips the copy; addresses in the communication-register
// window land in the MC's register file with p-bit semantics (S4.4:
// the registers live in shared memory space, so remote stores reach
// them). It reports whether the DMA completed.
func (c *Cell) deliver(cmd msc.Command, payload *mem.Payload, exec int, op string) bool {
	// Choose the destination side: PUT writes at RAddr on this cell;
	// GET replies write at LAddr on this (requesting) cell.
	addr := cmd.RAddr
	pat := cmd.RStride
	if cmd.Op == msc.OpGetReply {
		addr = cmd.LAddr
		pat = cmd.LStride
	}
	if addr == 0 || payload == nil {
		return true // pure flag/ack message
	}
	if addr >= CregSpaceBase {
		return c.deliverCreg(addr, payload, exec)
	}
	if _, err := c.MMU.Translate(addr, pat.Extent()); err != nil {
		// "If a page fault happens in a remote cell during message
		// transfer, the MSC+ interrupts the operating system and
		// pulls the remaining message from the network" (S4.1).
		c.OS.interrupt(IntrPageFault)
		c.OS.fault(fmt.Errorf("machine: cell %d: receive DMA: %w", c.id, err))
		return false
	}
	c.machine.sanAccess(exec, true, int(c.id), addr, pat, op)
	if err := payload.Deliver(c.Mem, addr, pat); err != nil {
		c.OS.fault(fmt.Errorf("machine: cell %d: receive DMA: %w", c.id, err))
		return false
	}
	// The receive hardware invalidates the cache lines the DMA wrote.
	c.invalLines.Add((payload.Size() + CacheLineBytes - 1) / CacheLineBytes)
	if o := c.machine.obs; o != nil {
		cc := o.Cell(int(c.id))
		cc.RecvDMAs.Add(1)
		cc.DeliveredBytes.Add(payload.Size())
		if tl := o.Timeline(); tl != nil {
			// Receive DMAs run on the sending controller's goroutine, so
			// several may overlap on this cell's track: instants, not
			// slices.
			tl.Instant(int(c.id), obs.TidMSC, "dma", "recv-dma", o.NowUs())
		}
	}
	return true
}

// receiveBroadcast is the cell's B-net interface: broadcasts land in
// an inbox the CPU drains with RecvBroadcast.
func (c *Cell) receiveBroadcast(msg bnet.Message) {
	c.bcastMu.Lock()
	c.bcasts = append(c.bcasts, bcastMsg{src: msg.Src, tag: msg.Tag, payload: msg.Payload})
	c.bcastMu.Unlock()
	c.bcastCond.Broadcast()
}
