// Quiesce tests for the PGAS aggregation layer, from the machine's
// vantage point: after Flush returns, no aggregation buffer may hold
// a queued or outstanding operation, no command-list payload may
// remain in flight (plain machine), and the reliable-delivery dedup
// state must have collapsed (faulted machine) — mirroring the
// reliable_drain_test invariants one layer up.
package machine_test

import (
	"fmt"
	"testing"

	"ap1000plus/internal/fault"
	"ap1000plus/internal/machine"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/pgas"
	"ap1000plus/internal/topology"
)

// runAggQuiesceWorkload drives a mixed aggregated workload — puts,
// adds, gathers, and conveyor-chained fetch-and-adds — with tiny
// regions (multiple exchange rounds), flushes, and checks the
// per-cell and whole-aggregator quiesce invariants inside the run.
func runAggQuiesceWorkload(t *testing.T, plan *fault.Plan) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.Config{Width: 2, Height: 2, Fault: plan})
	if err != nil {
		t.Fatal(err)
	}
	h, err := pgas.NewHeap(m)
	if err != nil {
		t.Fatal(err)
	}
	const n = 37
	data, err := h.Alloc("q.data", n)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := h.Alloc("q.tab", n)
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := h.Alloc("q.ctr", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		tab.SetWord(i, i*3+1)
	}
	np := m.Cells()
	pes := make([]*pgas.PE, np)
	for id := 0; id < np; id++ {
		if pes[id], err = pgas.NewPE(h, m.Cell(topology.CellID(id))); err != nil {
			t.Fatal(err)
		}
	}
	ag, err := pgas.NewAggregator(h, 8) // tiny regions: many rounds
	if err != nil {
		t.Fatal(err)
	}
	aggs := make([]*pgas.AggPE, np)
	for id := 0; id < np; id++ {
		if aggs[id], err = ag.Bind(pes[id]); err != nil {
			t.Fatal(err)
		}
	}
	err = m.Run(func(c *machine.Cell) error {
		me := int(c.ID())
		a := aggs[me]
		got := make([]int64, 64)
		for k := 0; k < 64; k++ {
			i := int64((k*7 + me*13) % n)
			if err := a.Add(data, i, 1); err != nil {
				return err
			}
			if err := a.Get(tab, i, &got[k]); err != nil {
				return err
			}
			// Conveyor chain: the fetched ticket mints a dependent put,
			// so responses arriving during Flush push fresh work.
			if err := a.FetchAdd(ctr, int64(k%2), 1, func(old int64) {
				_ = a.Put(data, old%n, old)
			}); err != nil {
				return err
			}
		}
		if err := a.Flush(); err != nil {
			return err
		}
		if err := a.Quiesced(); err != nil {
			return fmt.Errorf("cell %d after Flush: %w", me, err)
		}
		pes[me].Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FaultErr(); err != nil {
		t.Fatal(err)
	}
	if err := ag.Quiesced(); err != nil {
		t.Error(err)
	}
	// Bulk-synchronous invariant: every cell ran the same number of
	// exchange rounds.
	for id := 1; id < np; id++ {
		if aggs[id].Rounds() != aggs[0].Rounds() {
			t.Errorf("cell %d ran %d rounds, cell 0 ran %d", id, aggs[id].Rounds(), aggs[0].Rounds())
		}
	}
	return m
}

// TestAggQuiesceNoLeakedPayloads: on a plain machine the workload must
// return every pooled command payload — the in-flight count ends where
// it started.
func TestAggQuiesceNoLeakedPayloads(t *testing.T) {
	before := mem.PayloadsInFlight()
	runAggQuiesceWorkload(t, nil)
	if after := mem.PayloadsInFlight(); after != before {
		t.Errorf("payloads in flight %d -> %d: aggregation leaked %d pooled buffers",
			before, after, after-before)
	}
}

// TestAggQuiesceUnderFaults: under a lossy wire the same workload must
// still quiesce, and the per-link dedup windows must have collapsed.
// (Payload counts are not checked here: with a fault plan armed the
// MSC+ deliberately leaves retransmit buffers to the GC.)
func TestAggQuiesceUnderFaults(t *testing.T) {
	plan, err := fault.Parse("drop=0.06,dup=0.06,seed=21")
	if err != nil {
		t.Fatal(err)
	}
	m := runAggQuiesceWorkload(t, plan)
	if err := m.DrainInvariantErr(); err != nil {
		t.Error(err)
	}
}
