// Package machine assembles the AP1000+ functional simulator: cells
// (SuperSPARC context, MSC+ message controller, MC memory controller,
// DRAM), the three networks (T-net, B-net, S-net), and the SPMD
// runner that executes one user goroutine per cell, exactly as the
// paper's Figure 4/Figure 5 configuration wires the hardware.
//
// The machine is functional, not cycle-timed: data really moves,
// flags really increment, queues really overflow. Timing lives in
// the trace-driven MLSim (package mlsim), following the paper's own
// methodology of separating execution from timing simulation.
package machine

import (
	"fmt"
	"runtime"
	"sync"

	"ap1000plus/internal/apsan"
	"ap1000plus/internal/bnet"
	"ap1000plus/internal/fault"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/obs"
	"ap1000plus/internal/snet"
	"ap1000plus/internal/tnet"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

// Spec are the Table 1 machine specifications.
type Spec struct {
	Processor       string
	ClockMHz        int
	MFLOPSPerCell   int
	MemoryPerCellMB []int
	CacheKB         int
	CachePolicy     string
	MinCells        int
	MaxCells        int
	PeakGFLOPSAtMin float64
	PeakGFLOPSAtMax float64
}

// Table1 returns the published AP1000+ specifications.
func Table1() Spec {
	return Spec{
		Processor:       "SuperSPARC",
		ClockMHz:        50,
		MFLOPSPerCell:   50,
		MemoryPerCellMB: []int{16, 64},
		CacheKB:         36,
		CachePolicy:     "write-through",
		MinCells:        4,
		MaxCells:        1024,
		PeakGFLOPSAtMin: 0.2,
		PeakGFLOPSAtMax: 51.2,
	}
}

// WireKind selects the message hot-path build.
type WireKind uint8

const (
	// WireRing is the default lock-free wire: MSC+ send queues on
	// SPSC rings, a sharded pool of delivery workers instead of one
	// controller goroutine per cell, and — when no fault plan or
	// sanitizer forces synchronous delivery — asynchronous packet
	// transport over per-shard-pair tnet Links.
	WireRing WireKind = iota
	// WireMutex is the original mutex+cond build: one controller
	// goroutine per cell blocking on its MSC's condition variable,
	// synchronous packet delivery on the sender's goroutine. Kept as
	// the differential-testing reference (and for workloads that
	// push commands from more than one goroutine per cell, which the
	// ring wire's SPSC discipline forbids).
	WireMutex
)

// Config parameterizes a machine instance.
type Config struct {
	// Width and Height give the torus dimensions (4..4096 cells; the
	// shipped hardware stopped at 1024, the simulator admits 4x that
	// for weak-scaling studies).
	Width, Height int
	// MemoryPerCell is DRAM per cell in bytes (default 16 MB).
	MemoryPerCell int64
	// QueueWords sizes the MSC+ queues (default 64, the hardware's).
	QueueWords int
	// TraceApp, when non-empty, enables trace recording under this
	// application name.
	TraceApp string
	// Sanitize enables the apsan communication race detector: every
	// DMA access is checked against a happens-before model of flags,
	// barriers, acknowledgements and message receipt. Costs time and
	// memory; near-zero cost when off.
	Sanitize bool
	// Observe enables the obs counter layer: per-cell atomic counters
	// for issues, bytes, spills, interrupts and stall time, snapshot
	// via Metrics. Zero-cost (one nil check per hook) when off.
	Observe bool
	// Timeline, when non-nil, additionally collects Chrome
	// trace-event/Perfetto slices and instants for every cell CPU and
	// MSC+ controller. Implies Observe.
	Timeline *obs.Timeline
	// Fault, when non-nil, injects deterministic seeded wire faults
	// (drop/duplicate/reorder/delay/corrupt) into the T-net and B-net
	// and arms the MSC+'s reliable-delivery path: sequence numbers,
	// end-to-end checksums, retransmit with exponential backoff and a
	// bounded retry budget, receive-side dedup. Implies Observe (the
	// fault counters ride the obs layer). Nil costs one pointer check
	// per send — the wire is trusted, exactly the pre-fault machine.
	Fault *fault.Plan
	// Combining arms the T-net's in-network combining of same-address
	// combinable remote atomics (fetch-add, add, min, max): requests
	// merge at switch-level combining stations on the way to the owner
	// and the fetch results de-combine on the way down. Purely a
	// message-count optimization — combined and uncombined runs return
	// the same results.
	Combining bool
	// Wire selects the hot-path build: WireRing (default, lock-free)
	// or WireMutex (the legacy reference).
	Wire WireKind
	// Workers sets the ring wire's delivery-shard count; 0 picks
	// min(GOMAXPROCS, cells). Setting it on WireMutex is a conflict —
	// that build has one controller goroutine per cell by definition.
	Workers int
	// MutexLinks, on the ring wire, swaps the lock-free RingLinks for
	// the reference MutexLinks (differential testing of the link
	// layer; delivery semantics are identical).
	MutexLinks bool
	// Partitions splits the machine into this many equal contiguous
	// cell partitions — the paper's partitioned multi-user operation.
	// Each partition is a gang-scheduling unit with disjoint T-net
	// routing (a cross-partition send panics), a B-net segment scoped
	// to the sender's partition, its own S-net barrier domain, and an
	// independent quiesce/drain domain so concurrent jobs never wait
	// on each other. 0 (or 1) runs the classic single-partition
	// machine.
	Partitions int
}

func (c *Config) fill() error {
	if c.MemoryPerCell == 0 {
		c.MemoryPerCell = 16 << 20
	}
	if c.MemoryPerCell < 0 {
		return fmt.Errorf("machine: negative memory size")
	}
	if c.QueueWords == 0 {
		c.QueueWords = msc.QueueWords
	}
	if c.QueueWords < msc.CommandWords {
		return fmt.Errorf("machine: QueueWords %d below one %d-word command", c.QueueWords, msc.CommandWords)
	}
	if c.Wire > WireMutex {
		return fmt.Errorf("machine: unknown wire kind %d", c.Wire)
	}
	if c.Workers < 0 {
		return fmt.Errorf("machine: negative worker count %d", c.Workers)
	}
	if c.Wire == WireMutex && c.Workers > 0 {
		return fmt.Errorf("machine: Workers conflicts with the mutex wire (it runs one controller per cell)")
	}
	if c.Wire == WireMutex && c.MutexLinks {
		return fmt.Errorf("machine: MutexLinks conflicts with the mutex wire (it has no links)")
	}
	if c.Partitions < 0 {
		return fmt.Errorf("machine: negative partition count %d", c.Partitions)
	}
	if c.Partitions == 0 {
		c.Partitions = 1
	}
	if c.Partitions > 1 && c.Sanitize {
		return fmt.Errorf("machine: Sanitize requires a single partition (apsan models the all-cells barrier)")
	}
	if c.Partitions > 1 && c.Combining {
		return fmt.Errorf("machine: Combining requires a single partition (the combining tree spans the machine)")
	}
	return nil
}

// Machine is one AP1000+ system instance.
type Machine struct {
	cfg   Config
	torus *topology.Torus
	tnet  *tnet.Network
	bnet  *bnet.Network
	snet  *snet.Domains
	cells []*Cell

	// parts are the machine's gang-scheduling units; partOf maps each
	// cell to its partition index. Always at least one partition.
	parts  []*Partition
	partOf []int32

	// lifeMu guards the Open/Close lifecycle; ctlWG tracks the
	// delivery workers (or per-cell controllers) of the current epoch.
	lifeMu  sync.Mutex
	opened  bool
	everRan bool
	ctlWG   sync.WaitGroup

	ts   *trace.TraceSet
	san  *apsan.Sanitizer
	obs  *obs.Observer
	rel  *relay         // reliable delivery; nil without Config.Fault
	comb *tnet.Combiner // in-network combining; nil without Config.Combining
	pool *workerPool    // sharded delivery workers; nil on WireMutex
	// asyncWire marks the tnet ring wire active: packets may be
	// delivered on the destination shard's worker after Send returns,
	// so senders transfer payload ownership (FreeOnDeliver) instead of
	// releasing. False whenever a fault plan or the sanitizer needs
	// synchronous delivery — the MSC rings and workers stay on, only
	// the transport is synchronous.
	asyncWire bool

	groupMu sync.Mutex
	groups  []*topology.Group // index = trace.GroupID
}

// New builds a machine. Every cell's controllers are attached but not
// yet running; Run starts them.
func New(cfg Config) (*Machine, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	torus, err := topology.NewTorus(cfg.Width, cfg.Height)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		torus: torus,
		tnet:  tnet.New(torus),
		bnet:  bnet.New(torus.Cells()),
	}
	if err := m.buildPartitions(torus, cfg.Partitions); err != nil {
		return nil, err
	}
	m.groups = []*topology.Group{topology.AllCells(torus)}
	if cfg.Combining {
		m.comb = tnet.NewCombiner(torus.Cells())
	}
	if cfg.TraceApp != "" {
		m.ts = trace.New(cfg.TraceApp, cfg.Width, cfg.Height)
	}
	if cfg.Sanitize {
		m.san = apsan.New(torus.Cells())
		m.san.OnReport = func(r apsan.Report) {
			m.cells[r.Access.Cell].OS.interrupt(IntrSanitizer)
		}
	}
	if cfg.Observe || cfg.Timeline != nil || cfg.Fault != nil {
		m.obs = obs.NewObserver(torus.Cells(), cfg.Timeline)
		if tl := cfg.Timeline; tl != nil {
			for id := 0; id < torus.Cells(); id++ {
				tl.Process(id, fmt.Sprintf("cell %d", id))
				tl.Thread(id, obs.TidCPU, "cpu")
				tl.Thread(id, obs.TidMSC, "msc+")
			}
		}
	}
	if cfg.Fault != nil {
		// Class IDs match msc.Op values; broadcasts ride the extra
		// "bcast" class.
		inj, err := cfg.Fault.Build(torus.Cells(), append(msc.OpNames(), "bcast"))
		if err != nil {
			return nil, err
		}
		m.rel = newRelay(m, inj)
		m.tnet.SetFault(inj)
		m.bnet.SetFault(inj, inj.ClassID("bcast"), inj.MaxAttempts())
	}
	if cfg.Wire == WireRing && !cfg.Combining {
		// Combining keeps the per-cell controller goroutines: its
		// stations absorb requests only when several cells' controllers
		// submit concurrently, which a small shared worker pool
		// serializes away.
		m.pool = newWorkerPool(m, ringShards(cfg, torus.Cells()))
	}
	for id := 0; id < torus.Cells(); id++ {
		c, err := newCell(m, topology.CellID(id))
		if err != nil {
			return nil, err
		}
		m.cells = append(m.cells, c)
		m.tnet.Attach(c.id, c.receive)
		m.bnet.Attach(c.id, c.receiveBroadcast)
	}
	if m.pool != nil && cfg.Fault == nil && !cfg.Sanitize {
		// No one needs synchronous delivery: switch the T-net onto the
		// asynchronous ring wire. The fault plan's reliable layer reads
		// Send's per-attempt verdict, and the sanitizer's logical
		// clocks assume one cell's packets deliver serially, so either
		// keeps the transport synchronous (workers and MSC rings stay).
		m.tnet.SetRingWire(m.pool.shards(), ringLinkCap, m.pool.wake, cfg.MutexLinks, m.trackWire)
		m.asyncWire = true
	}
	return m, nil
}

// trackWire charges a cross-shard ring-wire packet to its destination
// partition's quiesce counter: +1 before enqueue, -1 after delivery.
func (m *Machine) trackWire(dst topology.CellID, delta int64) {
	m.parts[m.partOf[dst]].q.add(delta)
}

// ringShards picks the delivery-worker count for the ring wire.
func ringShards(cfg Config, cells int) int {
	w := cfg.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Cells reports the cell count.
func (m *Machine) Cells() int { return m.torus.Cells() }

// Torus exposes the machine geometry.
func (m *Machine) Torus() *topology.Torus { return m.torus }

// Cell returns cell id.
func (m *Machine) Cell(id topology.CellID) *Cell { return m.cells[id] }

// TNetStats reports point-to-point network statistics.
func (m *Machine) TNetStats() tnet.Stats { return m.tnet.Stats() }

// BNetStats reports broadcast network statistics.
func (m *Machine) BNetStats() bnet.Stats { return m.bnet.Stats() }

// Barriers reports how many hardware barriers completed, summed over
// every partition's S-net domain.
func (m *Machine) Barriers() int64 { return m.snet.Count() }

// Observer returns the observability context, or nil when neither
// Config.Observe nor Config.Timeline was set.
func (m *Machine) Observer() *obs.Observer { return m.obs }

// Sanitizer returns the race detector, or nil when Config.Sanitize
// was off.
func (m *Machine) Sanitizer() *apsan.Sanitizer { return m.san }

// SanitizeErr reports the first detected communication race, or nil
// when the machine is unsanitized or the run was clean. Check it
// after Run.
func (m *Machine) SanitizeErr() error {
	if m.san == nil {
		return nil
	}
	return m.san.Err()
}

// DefineGroup registers a cell group machine-wide and returns its
// trace GroupID. Groups must be defined before Run (SPMD prologue).
func (m *Machine) DefineGroup(g *topology.Group) trace.GroupID {
	m.groupMu.Lock()
	defer m.groupMu.Unlock()
	m.groups = append(m.groups, g)
	id := trace.GroupID(len(m.groups) - 1)
	if m.ts != nil {
		if got := m.ts.AddGroup(g.Members()); got != id {
			panic("machine: trace group id out of sync")
		}
	}
	return id
}

// Group resolves a GroupID.
func (m *Machine) Group(id trace.GroupID) *topology.Group {
	m.groupMu.Lock()
	defer m.groupMu.Unlock()
	return m.groups[id]
}

// Trace returns the recorded trace after Run; nil when tracing was
// not enabled.
func (m *Machine) Trace() *trace.TraceSet {
	if m.ts == nil {
		return nil
	}
	for id, c := range m.cells {
		m.ts.PE[id] = c.rec.Events()
	}
	return m.ts
}

// Run executes program SPMD: one goroutine per cell, plus the
// delivery engine (sharded workers or one controller goroutine per
// cell). It returns after every cell's program finished AND all
// in-flight communication drained, mirroring a job completing on the
// machine. On a partitioned machine every partition runs the program
// concurrently as its own job. Sequential Run calls on one machine
// are legal: job-scoped cell state resets between jobs (memory
// segments persist — see RunJob). The first program error (or panic,
// converted) is returned; faults taken by the hardware are left in
// each cell's OS log.
func (m *Machine) Run(program func(c *Cell) error) error {
	if err := m.Open(); err != nil {
		return err
	}
	errs := make([]error, len(m.parts))
	var wg sync.WaitGroup
	for i := range m.parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = m.RunJob(i, program)
		}(i)
	}
	wg.Wait()
	closeErr := m.Close()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return closeErr
}
