// Package machine assembles the AP1000+ functional simulator: cells
// (SuperSPARC context, MSC+ message controller, MC memory controller,
// DRAM), the three networks (T-net, B-net, S-net), and the SPMD
// runner that executes one user goroutine per cell, exactly as the
// paper's Figure 4/Figure 5 configuration wires the hardware.
//
// The machine is functional, not cycle-timed: data really moves,
// flags really increment, queues really overflow. Timing lives in
// the trace-driven MLSim (package mlsim), following the paper's own
// methodology of separating execution from timing simulation.
package machine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ap1000plus/internal/apsan"
	"ap1000plus/internal/bnet"
	"ap1000plus/internal/fault"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/obs"
	"ap1000plus/internal/snet"
	"ap1000plus/internal/tnet"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

// Spec are the Table 1 machine specifications.
type Spec struct {
	Processor       string
	ClockMHz        int
	MFLOPSPerCell   int
	MemoryPerCellMB []int
	CacheKB         int
	CachePolicy     string
	MinCells        int
	MaxCells        int
	PeakGFLOPSAtMin float64
	PeakGFLOPSAtMax float64
}

// Table1 returns the published AP1000+ specifications.
func Table1() Spec {
	return Spec{
		Processor:       "SuperSPARC",
		ClockMHz:        50,
		MFLOPSPerCell:   50,
		MemoryPerCellMB: []int{16, 64},
		CacheKB:         36,
		CachePolicy:     "write-through",
		MinCells:        4,
		MaxCells:        1024,
		PeakGFLOPSAtMin: 0.2,
		PeakGFLOPSAtMax: 51.2,
	}
}

// WireKind selects the message hot-path build.
type WireKind uint8

const (
	// WireRing is the default lock-free wire: MSC+ send queues on
	// SPSC rings, a sharded pool of delivery workers instead of one
	// controller goroutine per cell, and — when no fault plan or
	// sanitizer forces synchronous delivery — asynchronous packet
	// transport over per-shard-pair tnet Links.
	WireRing WireKind = iota
	// WireMutex is the original mutex+cond build: one controller
	// goroutine per cell blocking on its MSC's condition variable,
	// synchronous packet delivery on the sender's goroutine. Kept as
	// the differential-testing reference (and for workloads that
	// push commands from more than one goroutine per cell, which the
	// ring wire's SPSC discipline forbids).
	WireMutex
)

// Config parameterizes a machine instance.
type Config struct {
	// Width and Height give the torus dimensions (4..4096 cells; the
	// shipped hardware stopped at 1024, the simulator admits 4x that
	// for weak-scaling studies).
	Width, Height int
	// MemoryPerCell is DRAM per cell in bytes (default 16 MB).
	MemoryPerCell int64
	// QueueWords sizes the MSC+ queues (default 64, the hardware's).
	QueueWords int
	// TraceApp, when non-empty, enables trace recording under this
	// application name.
	TraceApp string
	// Sanitize enables the apsan communication race detector: every
	// DMA access is checked against a happens-before model of flags,
	// barriers, acknowledgements and message receipt. Costs time and
	// memory; near-zero cost when off.
	Sanitize bool
	// Observe enables the obs counter layer: per-cell atomic counters
	// for issues, bytes, spills, interrupts and stall time, snapshot
	// via Metrics. Zero-cost (one nil check per hook) when off.
	Observe bool
	// Timeline, when non-nil, additionally collects Chrome
	// trace-event/Perfetto slices and instants for every cell CPU and
	// MSC+ controller. Implies Observe.
	Timeline *obs.Timeline
	// Fault, when non-nil, injects deterministic seeded wire faults
	// (drop/duplicate/reorder/delay/corrupt) into the T-net and B-net
	// and arms the MSC+'s reliable-delivery path: sequence numbers,
	// end-to-end checksums, retransmit with exponential backoff and a
	// bounded retry budget, receive-side dedup. Implies Observe (the
	// fault counters ride the obs layer). Nil costs one pointer check
	// per send — the wire is trusted, exactly the pre-fault machine.
	Fault *fault.Plan
	// Combining arms the T-net's in-network combining of same-address
	// combinable remote atomics (fetch-add, add, min, max): requests
	// merge at switch-level combining stations on the way to the owner
	// and the fetch results de-combine on the way down. Purely a
	// message-count optimization — combined and uncombined runs return
	// the same results.
	Combining bool
	// Wire selects the hot-path build: WireRing (default, lock-free)
	// or WireMutex (the legacy reference).
	Wire WireKind
	// Workers sets the ring wire's delivery-shard count; 0 picks
	// min(GOMAXPROCS, cells). Setting it on WireMutex is a conflict —
	// that build has one controller goroutine per cell by definition.
	Workers int
	// MutexLinks, on the ring wire, swaps the lock-free RingLinks for
	// the reference MutexLinks (differential testing of the link
	// layer; delivery semantics are identical).
	MutexLinks bool
}

func (c *Config) fill() error {
	if c.MemoryPerCell == 0 {
		c.MemoryPerCell = 16 << 20
	}
	if c.MemoryPerCell < 0 {
		return fmt.Errorf("machine: negative memory size")
	}
	if c.QueueWords == 0 {
		c.QueueWords = msc.QueueWords
	}
	if c.QueueWords < msc.CommandWords {
		return fmt.Errorf("machine: QueueWords %d below one %d-word command", c.QueueWords, msc.CommandWords)
	}
	if c.Wire > WireMutex {
		return fmt.Errorf("machine: unknown wire kind %d", c.Wire)
	}
	if c.Workers < 0 {
		return fmt.Errorf("machine: negative worker count %d", c.Workers)
	}
	if c.Wire == WireMutex && c.Workers > 0 {
		return fmt.Errorf("machine: Workers conflicts with the mutex wire (it runs one controller per cell)")
	}
	if c.Wire == WireMutex && c.MutexLinks {
		return fmt.Errorf("machine: MutexLinks conflicts with the mutex wire (it has no links)")
	}
	return nil
}

// Machine is one AP1000+ system instance.
type Machine struct {
	cfg   Config
	torus *topology.Torus
	tnet  *tnet.Network
	bnet  *bnet.Network
	snet  *snet.Barrier
	cells []*Cell

	inflight atomic.Int64 // commands pushed but not fully processed
	ran      atomic.Bool
	ts       *trace.TraceSet
	san      *apsan.Sanitizer
	obs      *obs.Observer
	rel      *relay         // reliable delivery; nil without Config.Fault
	comb     *tnet.Combiner // in-network combining; nil without Config.Combining
	pool     *workerPool    // sharded delivery workers; nil on WireMutex
	// asyncWire marks the tnet ring wire active: packets may be
	// delivered on the destination shard's worker after Send returns,
	// so senders transfer payload ownership (FreeOnDeliver) instead of
	// releasing. False whenever a fault plan or the sanitizer needs
	// synchronous delivery — the MSC rings and workers stay on, only
	// the transport is synchronous.
	asyncWire bool

	groupMu sync.Mutex
	groups  []*topology.Group // index = trace.GroupID
}

// New builds a machine. Every cell's controllers are attached but not
// yet running; Run starts them.
func New(cfg Config) (*Machine, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	torus, err := topology.NewTorus(cfg.Width, cfg.Height)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		torus: torus,
		tnet:  tnet.New(torus),
		bnet:  bnet.New(torus.Cells()),
		snet:  snet.New(torus.Cells()),
	}
	m.groups = []*topology.Group{topology.AllCells(torus)}
	if cfg.Combining {
		m.comb = tnet.NewCombiner(torus.Cells())
	}
	if cfg.TraceApp != "" {
		m.ts = trace.New(cfg.TraceApp, cfg.Width, cfg.Height)
	}
	if cfg.Sanitize {
		m.san = apsan.New(torus.Cells())
		m.san.OnReport = func(r apsan.Report) {
			m.cells[r.Access.Cell].OS.interrupt(IntrSanitizer)
		}
	}
	if cfg.Observe || cfg.Timeline != nil || cfg.Fault != nil {
		m.obs = obs.NewObserver(torus.Cells(), cfg.Timeline)
		if tl := cfg.Timeline; tl != nil {
			for id := 0; id < torus.Cells(); id++ {
				tl.Process(id, fmt.Sprintf("cell %d", id))
				tl.Thread(id, obs.TidCPU, "cpu")
				tl.Thread(id, obs.TidMSC, "msc+")
			}
		}
	}
	if cfg.Fault != nil {
		// Class IDs match msc.Op values; broadcasts ride the extra
		// "bcast" class.
		inj, err := cfg.Fault.Build(torus.Cells(), append(msc.OpNames(), "bcast"))
		if err != nil {
			return nil, err
		}
		m.rel = newRelay(m, inj)
		m.tnet.SetFault(inj)
		m.bnet.SetFault(inj, inj.ClassID("bcast"), inj.MaxAttempts())
	}
	if cfg.Wire == WireRing && !cfg.Combining {
		// Combining keeps the per-cell controller goroutines: its
		// stations absorb requests only when several cells' controllers
		// submit concurrently, which a small shared worker pool
		// serializes away.
		m.pool = newWorkerPool(m, ringShards(cfg, torus.Cells()))
	}
	for id := 0; id < torus.Cells(); id++ {
		c, err := newCell(m, topology.CellID(id))
		if err != nil {
			return nil, err
		}
		m.cells = append(m.cells, c)
		m.tnet.Attach(c.id, c.receive)
		m.bnet.Attach(c.id, c.receiveBroadcast)
	}
	if m.pool != nil && cfg.Fault == nil && !cfg.Sanitize {
		// No one needs synchronous delivery: switch the T-net onto the
		// asynchronous ring wire. The fault plan's reliable layer reads
		// Send's per-attempt verdict, and the sanitizer's logical
		// clocks assume one cell's packets deliver serially, so either
		// keeps the transport synchronous (workers and MSC rings stay).
		m.tnet.SetRingWire(m.pool.shards(), ringLinkCap, m.pool.wake, cfg.MutexLinks)
		m.asyncWire = true
	}
	return m, nil
}

// ringShards picks the delivery-worker count for the ring wire.
func ringShards(cfg Config, cells int) int {
	w := cfg.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Cells reports the cell count.
func (m *Machine) Cells() int { return m.torus.Cells() }

// Torus exposes the machine geometry.
func (m *Machine) Torus() *topology.Torus { return m.torus }

// Cell returns cell id.
func (m *Machine) Cell(id topology.CellID) *Cell { return m.cells[id] }

// TNetStats reports point-to-point network statistics.
func (m *Machine) TNetStats() tnet.Stats { return m.tnet.Stats() }

// BNetStats reports broadcast network statistics.
func (m *Machine) BNetStats() bnet.Stats { return m.bnet.Stats() }

// Barriers reports how many all-cell hardware barriers completed.
func (m *Machine) Barriers() int64 { return m.snet.Count() }

// Observer returns the observability context, or nil when neither
// Config.Observe nor Config.Timeline was set.
func (m *Machine) Observer() *obs.Observer { return m.obs }

// Sanitizer returns the race detector, or nil when Config.Sanitize
// was off.
func (m *Machine) Sanitizer() *apsan.Sanitizer { return m.san }

// SanitizeErr reports the first detected communication race, or nil
// when the machine is unsanitized or the run was clean. Check it
// after Run.
func (m *Machine) SanitizeErr() error {
	if m.san == nil {
		return nil
	}
	return m.san.Err()
}

// DefineGroup registers a cell group machine-wide and returns its
// trace GroupID. Groups must be defined before Run (SPMD prologue).
func (m *Machine) DefineGroup(g *topology.Group) trace.GroupID {
	m.groupMu.Lock()
	defer m.groupMu.Unlock()
	m.groups = append(m.groups, g)
	id := trace.GroupID(len(m.groups) - 1)
	if m.ts != nil {
		if got := m.ts.AddGroup(g.Members()); got != id {
			panic("machine: trace group id out of sync")
		}
	}
	return id
}

// Group resolves a GroupID.
func (m *Machine) Group(id trace.GroupID) *topology.Group {
	m.groupMu.Lock()
	defer m.groupMu.Unlock()
	return m.groups[id]
}

// Trace returns the recorded trace after Run; nil when tracing was
// not enabled.
func (m *Machine) Trace() *trace.TraceSet {
	if m.ts == nil {
		return nil
	}
	for id, c := range m.cells {
		m.ts.PE[id] = c.rec.Events()
	}
	return m.ts
}

// Run executes program SPMD: one goroutine per cell, plus one message
// controller goroutine per cell. It returns after every cell's
// program finished AND all in-flight communication drained, mirroring
// a job completing on the machine. The first program error (or
// panic, converted) is returned; faults taken by the hardware are
// left in each cell's OS log.
func (m *Machine) Run(program func(c *Cell) error) error {
	if !m.ran.CompareAndSwap(false, true) {
		return fmt.Errorf("machine: Run called twice (a machine instance executes one job; build a new Machine)")
	}
	var ctlWG sync.WaitGroup
	if m.pool != nil {
		m.pool.start(&ctlWG)
	} else {
		for _, c := range m.cells {
			ctlWG.Add(1)
			go func(c *Cell) {
				defer ctlWG.Done()
				m.controller(c)
			}(c)
		}
	}

	errs := make([]error, len(m.cells))
	var cpuWG sync.WaitGroup
	for i, c := range m.cells {
		cpuWG.Add(1)
		go func(i int, c *Cell) {
			defer cpuWG.Done()
			defer func() {
				if r := recover(); r != nil {
					buf := make([]byte, 8192)
					n := runtime.Stack(buf, false)
					errs[i] = fmt.Errorf("machine: cell %d panic: %v\n%s", c.id, r, buf[:n])
				}
			}()
			errs[i] = program(c)
		}(i, c)
	}
	cpuWG.Wait()

	// Drain: wait for all queued and chained commands to complete,
	// then stop the controllers. Under a fault plan, reordered packets
	// held in limbo are flushed once the machine is quiescent; a flush
	// can queue new commands (a late GET request), so drain again until
	// nothing is held.
	for {
		// On the async ring wire a packet can still be in a link after
		// the command that sent it finished, so quiescence is both
		// counters at zero (PendingPackets is decremented only after a
		// delivery's handler returns, closing the window between them).
		for m.inflight.Load() != 0 || m.tnet.PendingPackets() != 0 {
			runtime.Gosched()
		}
		if m.rel == nil || m.tnet.FlushHeld() == 0 {
			break
		}
	}
	if m.rel != nil {
		// Quiescent: collapse the dedup holes left by abandoned
		// (retry-budget-exhausted) packets so the per-link seen windows
		// drain to empty instead of growing for the rest of the run.
		m.rel.reconcile()
	}
	for _, c := range m.cells {
		c.MSC.Close()
	}
	if m.pool != nil {
		m.pool.close()
	}
	ctlWG.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
