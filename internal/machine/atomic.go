package machine

// The remote atomic suite: the generalization of the MC's S4.1
// fetch-and-increment into FetchAdd / Add / CompareAndSwap / Swap /
// Min / Max on 8-byte cell-memory words. Requests travel as OpAtomic
// commands through the ordinary doorbell path, execute at the owning
// cell's controller under the reliable layer's dedup gate (exactly
// once), and answer inline with OpAtomicReply. Fetching operations
// block the issuing CPU like a remote load; non-fetching updates are
// fire-and-forget, fenced through mc.AtomicAckFlagID. With
// Config.Combining, combinable requests merge in the T-net's
// combining tree (see internal/tnet/combine.go) and the reply
// de-combines here.

import (
	"fmt"

	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/obs"
	"ap1000plus/internal/tnet"
	"ap1000plus/internal/topology"
)

// atomicResult is one fetching atomic's completion.
type atomicResult struct {
	val int64
	ok  bool
}

// newAtomicWaiter registers a completion callback and returns its
// tag. Tags are never 0 (0 marks a non-fetching update on the wire).
func (c *Cell) newAtomicWaiter(fn func(val int64, ok bool, exec int)) int64 {
	c.atomicMu.Lock()
	defer c.atomicMu.Unlock()
	c.atomicSeq++
	if c.atomicWait == nil {
		c.atomicWait = make(map[int64]func(val int64, ok bool, exec int))
	}
	c.atomicWait[c.atomicSeq] = fn
	return c.atomicSeq
}

// completeAtomic resolves a fetching atomic's tag. Unknown tags are
// tolerated silently — under a fault plan the owner may replay a
// result whose original reply already completed the waiter (unlike
// completeLoad, where an unknown tag is a protocol fault).
func (c *Cell) completeAtomic(tag, val int64, ok bool, exec int) {
	c.atomicMu.Lock()
	fn := c.atomicWait[tag]
	delete(c.atomicWait, tag)
	c.atomicMu.Unlock()
	if fn != nil {
		fn(val, ok, exec)
	}
}

// atomicFetch issues one fetching atomic and blocks for its result,
// through the privileged remote-access queue like a remote load.
func (c *Cell) atomicFetch(dst topology.CellID, raddr mem.Addr, op mc.AtomicOp, operand, cmp int64) (int64, error) {
	ch := make(chan atomicResult, 1)
	tag := c.newAtomicWaiter(func(val int64, ok bool, _ int) {
		ch <- atomicResult{val, ok}
	})
	cmd := msc.Command{
		Op: msc.OpAtomic, Src: c.id, Dst: dst,
		RAddr: raddr, AOp: op, AVal: operand, ACmp: cmp, Tag: tag,
	}
	c.sanIssue(&cmd)
	c.obsIssue(&cmd)
	c.push(qRemote, cmd)
	res := <-ch
	if !res.ok {
		return 0, fmt.Errorf("machine: atomic %s %d->%d @%#x faulted", op, c.id, dst, raddr)
	}
	return res.val, nil
}

// atomicUpdate issues one non-fetching atomic (fire-and-forget); its
// acknowledgement raises mc.AtomicAckFlagID, which FenceAtomics
// counts against the issue counter.
func (c *Cell) atomicUpdate(dst topology.CellID, raddr mem.Addr, op mc.AtomicOp, operand int64) {
	c.atoms.Add(1)
	cmd := msc.Command{
		Op: msc.OpAtomic, Src: c.id, Dst: dst,
		RAddr: raddr, AOp: op, AVal: operand,
	}
	c.sanIssue(&cmd)
	c.obsIssue(&cmd)
	c.push(qRemote, cmd)
}

// FetchAdd atomically adds delta to the 8-byte word at raddr on dst
// and returns the word's previous value. Blocking, like a remote
// load; the addition wraps like the hardware's 64-bit adder.
func (c *Cell) FetchAdd(dst topology.CellID, raddr mem.Addr, delta int64) (int64, error) {
	return c.atomicFetch(dst, raddr, mc.AtomicFetchAdd, delta, 0)
}

// CompareAndSwap atomically stores newVal into the word at raddr on
// dst iff the word equals oldVal, returning the previous value either
// way (compare against oldVal to learn whether the swap happened).
func (c *Cell) CompareAndSwap(dst topology.CellID, raddr mem.Addr, oldVal, newVal int64) (int64, error) {
	return c.atomicFetch(dst, raddr, mc.AtomicCAS, newVal, oldVal)
}

// Swap atomically stores v into the word at raddr on dst and returns
// the previous value.
func (c *Cell) Swap(dst topology.CellID, raddr mem.Addr, v int64) (int64, error) {
	return c.atomicFetch(dst, raddr, mc.AtomicSwap, v, 0)
}

// AtomicAdd atomically adds delta to the word at raddr on dst without
// returning a value (non-blocking; fence with FenceAtomics).
func (c *Cell) AtomicAdd(dst topology.CellID, raddr mem.Addr, delta int64) {
	c.atomicUpdate(dst, raddr, mc.AtomicAdd, delta)
}

// AtomicMin atomically lowers the word at raddr on dst to v if v is
// smaller (signed; non-blocking).
func (c *Cell) AtomicMin(dst topology.CellID, raddr mem.Addr, v int64) {
	c.atomicUpdate(dst, raddr, mc.AtomicMin, v)
}

// AtomicMax atomically raises the word at raddr on dst to v if v is
// larger (signed; non-blocking).
func (c *Cell) AtomicMax(dst topology.CellID, raddr mem.Addr, v int64) {
	c.atomicUpdate(dst, raddr, mc.AtomicMax, v)
}

// AtomicsIssued reports how many non-fetching atomics this cell has
// issued; with Flags.Wait on mc.AtomicAckFlagID it forms the atomic
// fence.
func (c *Cell) AtomicsIssued() int64 { return c.atoms.Load() }

// FenceAtomics blocks until every non-fetching atomic issued by this
// cell so far has been acknowledged (or abandoned under the fault
// plan's retry budget — the fence means settled, not succeeded; check
// Machine.FaultErr for losses).
func (c *Cell) FenceAtomics() {
	c.Flags.Wait(mc.AtomicAckFlagID, c.atoms.Load())
}

// routeAtomic sends a queued atomic request toward its owner — the
// controller-side half of the issue path. With combining armed and a
// combinable operation, the request enters the combining tree and may
// be absorbed without touching the wire.
func (m *Machine) routeAtomic(c *Cell, cmd msc.Command, exec int) {
	if cb := m.comb; cb != nil && cmd.AOp.Combinable() {
		root, send := cb.Submit(c.id, cmd.Dst, cmd.RAddr, cmd.AOp, cmd.Tag, cmd.AVal)
		if !send {
			// Joined an open station: the upstream master's reply will
			// de-combine this request's result.
			if o := m.obs; o != nil {
				o.Cell(int(c.id)).AtomicsCombined.Add(1)
				if tl := o.Timeline(); tl != nil {
					tl.Instant(int(c.id), obs.TidMSC, "atomic", "combine", o.NowUs())
				}
			}
			return
		}
		// Root master: one combined request carries the whole subtree.
		out := cmd
		out.AVal = root.Delta
		out.Tag = c.newAtomicWaiter(func(val int64, ok bool, exec int) {
			m.decombine(root, cmd.AOp, val, ok, exec)
		})
		if !m.xmit(c, tnet.Packet{Head: out, SanTid: exec}) {
			// Retry budget exhausted: settle every member so no CPU
			// hangs on a result that can never arrive.
			c.completeAtomic(out.Tag, 0, false, exec)
		}
		return
	}
	if !m.xmit(c, tnet.Packet{Head: cmd, SanTid: exec}) {
		if cmd.Tag != 0 {
			c.completeAtomic(cmd.Tag, 0, false, exec)
		} else {
			// Settle the fence; the CellFault records the loss.
			c.Flags.Inc(mc.AtomicAckFlagID)
		}
	}
}

// decombine distributes one combined reply down the tree in join
// order: for fetch-add, member i observes base plus the sum of the
// deltas joined before it (the Ultracomputer de-combining rule, exact
// under wrapping addition); min/max and non-fetching members need
// only their fence acks.
func (m *Machine) decombine(node *tnet.AtomNode, op mc.AtomicOp, base int64, ok bool, exec int) {
	prefix := base
	var walk func(n *tnet.AtomNode)
	walk = func(n *tnet.AtomNode) {
		if n.Kids == nil {
			cell := m.cells[n.Cell]
			if n.Tag != 0 {
				cell.completeAtomic(n.Tag, prefix, ok, exec)
			} else {
				m.sanFlagInc(exec, int(n.Cell), mc.AtomicAckFlagID)
				cell.Flags.Inc(mc.AtomicAckFlagID)
			}
			if op == mc.AtomicFetchAdd || op == mc.AtomicAdd {
				prefix += n.Delta
			}
			return
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(node)
}

// execAtomic is the owner-side RMW: translate the word address, read-
// modify-write under the cell's atomic mutex (requests from several
// senders' controllers deliver concurrently), and report the old word
// or a fault. Atomics are synchronization operations like the flag
// incrementer, so no sanitizer access is recorded for the RMW itself.
func (c *Cell) execAtomic(cmd msc.Command) (old int64, faulted bool) {
	if _, err := c.MMU.Translate(cmd.RAddr, 8); err != nil {
		c.OS.interrupt(IntrPageFault)
		c.OS.fault(fmt.Errorf("machine: cell %d: atomic %s: %w", c.id, cmd.AOp, err))
		return 0, true
	}
	c.atomMu.Lock()
	word, err := c.Mem.LoadWord8(cmd.RAddr)
	if err == nil {
		stored, _ := mc.ApplyAtomic(cmd.AOp, int64(word), cmd.AVal, cmd.ACmp)
		err = c.Mem.StoreWord8(cmd.RAddr, uint64(stored))
	}
	c.atomMu.Unlock()
	if err != nil {
		c.OS.interrupt(IntrPageFault)
		c.OS.fault(fmt.Errorf("machine: cell %d: atomic %s: %w", c.id, cmd.AOp, err))
		return 0, true
	}
	if o := c.machine.obs; o != nil {
		o.Cell(int(c.id)).AtomicsExecuted.Add(1)
		if tl := o.Timeline(); tl != nil {
			tl.Instant(int(c.id), obs.TidMSC, "atomic", cmd.AOp.String(), o.NowUs())
		}
	}
	return int64(word), false
}

// replayAtomic serves a duplicated atomic request from the link's
// result-replay cache: the RMW must not re-execute (a replayed
// fetch-add is observable), but the requester may still be waiting —
// its copy of the reply can have been lost — so the owner re-sends
// the cached result. Non-fetching duplicates need nothing: their only
// observable effect is the fence ack the original reply carried, and
// replaying it would double-count the fence.
func (c *Cell) replayAtomic(p tnet.Packet) {
	cmd := p.Head
	if cmd.Tag == 0 {
		return
	}
	m := c.machine
	val, ok := m.rel.cachedResult(cmd.Src, cmd.Dst, cmd.Seq)
	if !ok {
		// Aged out of the bounded window (or the original execution
		// faulted); the original reply stands on its own.
		return
	}
	if o := m.obs; o != nil {
		o.Cell(int(c.id)).AtomicReplays.Add(1)
		if tl := o.Timeline(); tl != nil {
			tl.Instant(int(c.id), obs.TidMSC, "atomic", "replay", o.NowUs())
		}
	}
	reply := msc.Command{
		Op: msc.OpAtomicReply, Src: c.id, Dst: cmd.Src,
		RAddr: cmd.RAddr, AOp: cmd.AOp, AVal: val, Tag: cmd.Tag,
	}
	m.xmit(c, tnet.Packet{Head: reply, SanTid: p.SanTid})
}
