package machine

import (
	"encoding/binary"
	"fmt"
	"math"

	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
)

// CregSpaceBase is the logical address of cell-local communication
// register 0. "128 4-byte communication registers for each MC are
// allocated in shared memory space" (S4.4): a remote store whose
// destination falls in [CregSpaceBase, CregSpaceBase+512) lands in
// the destination cell's register file instead of DRAM.
const CregSpaceBase mem.Addr = 0xC000_0000

// CregAddr returns the shared-space address of communication register
// idx on any cell (the owning cell is chosen by the store's
// destination cell ID).
func CregAddr(idx int) mem.Addr {
	if idx < 0 || idx >= mc.NumCommRegs {
		panic(fmt.Sprintf("machine: communication register %d out of range", idx))
	}
	return CregSpaceBase + mem.Addr(idx*4)
}

// deliverCreg writes an arriving 4- or 8-byte payload into the
// communication register file, setting p-bits. The sanitizer treats
// registers as pure synchronization: the executing thread's clock is
// released into the register's p-bit channel ahead of the store, and
// a LoadCreg acquires it — the store/load handshake of S4.4.
func (c *Cell) deliverCreg(addr mem.Addr, payload *mem.Payload, exec int) bool {
	off := addr - CregSpaceBase
	if off%4 != 0 || off/4 >= mc.NumCommRegs {
		c.OS.fault(fmt.Errorf("machine: cell %d: bad communication register address %#x", c.id, addr))
		return false
	}
	idx := int(off / 4)
	sanStore := func(width int) {
		if s := c.machine.san; s != nil && exec >= 0 {
			s.CregStore(exec, int(c.id), idx, width)
		}
	}
	size := payload.Size()
	switch size {
	case 4:
		data, ok := payload.Bytes()
		if !ok {
			c.OS.fault(fmt.Errorf("machine: cell %d: 4-byte register store needs byte data", c.id))
			return false
		}
		sanStore(1)
		c.Cregs.Store32(idx, binary.LittleEndian.Uint32(data))
		return true
	case 8:
		if vals, ok := payload.Float64s(); ok {
			sanStore(2)
			c.Cregs.Store64(idx, math.Float64bits(vals[0]))
			return true
		}
		if data, ok := payload.Bytes(); ok {
			sanStore(2)
			c.Cregs.Store64(idx, binary.LittleEndian.Uint64(data))
			return true
		}
		c.OS.fault(fmt.Errorf("machine: cell %d: unsupported register payload", c.id))
		return false
	default:
		c.OS.fault(fmt.Errorf("machine: cell %d: communication registers accept 4- or 8-byte accesses, got %d", c.id, size))
		return false
	}
}
