package machine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ap1000plus/internal/bnet"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/obs"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

// MessageSink consumes SEND-model messages arriving at a cell; the
// sendrecv package installs a ring buffer here.
type MessageSink func(port int32, src topology.CellID, payload *mem.Payload)

// Cell is one processing element: SuperSPARC context, memory, MC and
// MSC+ state (Figure 5).
type Cell struct {
	id      topology.CellID
	machine *Machine
	// part is the partition the cell belongs to; its quiesce counter
	// tracks this cell's in-flight work for the partition drain.
	part *Partition

	// Mem is the cell's DRAM.
	Mem *mem.Space
	// MMU is the MC's address translator.
	MMU *mc.MMU
	// Flags is the cell's synchronization flag file, incremented by
	// the MC's fetch-and-increment on DMA completion.
	Flags *mc.Flags
	// Cregs are the 128 communication registers with p-bits.
	Cregs *mc.CommRegs
	// MSC is the message controller's queue front end.
	MSC *msc.MSC
	// OS is the cell's operating system state (interrupt and fault
	// logs).
	OS *OS

	rec *trace.Recorder

	sinkMu sync.RWMutex
	sink   MessageSink

	loadMu  sync.Mutex
	loadSeq int64
	loads   map[int64]chan *mem.Payload

	bcastMu   sync.Mutex
	bcastCond *sync.Cond
	bcasts    []bcastMsg

	rstores atomic.Int64 // remote stores issued (for fencing)
	atoms   atomic.Int64 // non-fetching atomics issued (for fencing)

	// atomMu serializes owner-side atomic RMWs on this cell's memory:
	// requests from several senders' controller goroutines may deliver
	// concurrently, and the read-modify-write must be indivisible.
	atomMu sync.Mutex

	// atomicWait holds the pending fetching-atomic completions by tag:
	// a plain waiter forwards the fetched value to the issuing CPU's
	// channel, a combining master's waiter de-combines a whole batch.
	// Tag 0 is reserved for non-fetching updates (no waiter).
	atomicMu   sync.Mutex
	atomicSeq  int64
	atomicWait map[int64]func(val int64, ok bool, exec int)

	// dsmHooks connects the cell's MSC+ to the DSM page-cache
	// directory when write-through paging is enabled (nil otherwise,
	// which keeps the remote-access paths hook-free).
	dsmHooks atomic.Pointer[DSMHooks]

	// dirty is the cell's delivery doorbell on the ring wire: set by
	// the first producer to push into an empty-scheduled MSC, cleared
	// by the owning worker at the top of each drain. Unused (always
	// false) on the mutex wire.
	dirty atomic.Bool
	// shard is the delivery worker this cell is pinned to (id mod W)
	// on the ring wire; 0 on the mutex wire.
	shard int

	// invalLines counts cache lines invalidated by message reception:
	// "Invalidation of cache is done at the time of message
	// reception. This means that data reception from a network does
	// not prevent user program execution" (S4.1). The SuperSPARC's
	// 36 KB write-through cache uses 32-byte lines.
	invalLines atomic.Int64
}

// CacheLineBytes is the cache line size used for invalidation
// accounting.
const CacheLineBytes = 32

// CacheInvalidations reports how many cache lines the receive
// hardware invalidated on this cell.
func (c *Cell) CacheInvalidations() int64 { return c.invalLines.Load() }

type bcastMsg struct {
	src     topology.CellID
	tag     int64
	payload *mem.Payload
}

func newCell(m *Machine, id topology.CellID) (*Cell, error) {
	space, err := mem.NewSpace(m.cfg.MemoryPerCell)
	if err != nil {
		return nil, err
	}
	c := &Cell{
		id:      id,
		machine: m,
		part:    m.parts[m.partOf[id]],
		Mem:     space,
		MMU:     mc.NewMMU(mc.DefaultTLB),
		Flags:   mc.NewFlags(),
		Cregs:   mc.NewCommRegs(),
		OS:      newOS(),
		loads:   make(map[int64]chan *mem.Payload),
	}
	if m.pool != nil {
		// Ring wire: lock-free MSC front whose doorbell schedules this
		// cell on its delivery shard.
		c.shard = int(id) % m.pool.shards()
		c.MSC = msc.NewRing(m.cfg.QueueWords, func() { m.notifyCell(c) })
	} else {
		c.MSC = msc.NewWithQueueWords(m.cfg.QueueWords)
	}
	c.bcastCond = sync.NewCond(&c.bcastMu)
	if m.ts != nil {
		c.rec = trace.NewRecorder()
	}
	if m.cfg.Sanitize {
		// Flag waits run on the owning cell's program goroutine; a
		// satisfied wait acquires everything released into the flag.
		// The sanitizer is read through the machine on every wait:
		// Open rebuilds it for each epoch of a reopened machine.
		c.Flags.SetWaitObserver(func(f mc.FlagID) {
			s := m.san
			s.FlagWaited(s.CPU(int(id)), int(id), int32(f))
		})
	}
	if o := m.obs; o != nil {
		cc := o.Cell(int(id))
		pid := int(id)
		// Stall timing: the span starts only when a Wait actually
		// blocks, so uncontended flag checks cost nothing extra.
		c.Flags.SetWaitSpan(func(f mc.FlagID) func() {
			start := time.Now()
			return func() {
				d := time.Since(start)
				cc.FlagWaits.Add(1)
				cc.FlagWaitNanos.Add(d.Nanoseconds())
				if tl := o.Timeline(); tl != nil {
					end := o.NowUs()
					tl.Slice(pid, obs.TidCPU, "stall", "flag-wait", end-float64(d.Nanoseconds())/1e3, float64(d.Nanoseconds())/1e3)
				}
			}
		})
		c.OS.obsHook = func(cause InterruptCause) {
			cc.Interrupts.Add(1)
			if tl := o.Timeline(); tl != nil {
				tl.Instant(pid, obs.TidMSC, "interrupt", cause.String(), o.NowUs())
			}
		}
		c.MSC.SetObserver(
			func(queue string, n int) {
				cc.Spills.Add(int64(n))
				if tl := o.Timeline(); tl != nil {
					tl.Instant(pid, obs.TidMSC, "queue", "spill:"+queue, o.NowUs())
				}
			},
			func(queue string, n int) {
				cc.Refills.Add(int64(n))
				if tl := o.Timeline(); tl != nil {
					tl.Instant(pid, obs.TidMSC, "queue", "refill:"+queue, o.NowUs())
				}
			})
	}
	return c, nil
}

// ID reports the cell's number.
func (c *Cell) ID() topology.CellID { return c.id }

// N reports the total number of cells in the machine.
func (c *Cell) N() int { return c.machine.Cells() }

// Machine returns the owning machine.
func (c *Cell) Machine() *Machine { return c.machine }

// Recorder returns the cell's trace recorder, or nil when tracing is
// disabled. Layered packages (core, vpp, sendrecv, barrier) record
// their library entry points here, mirroring the paper's probes.
func (c *Cell) Recorder() *trace.Recorder { return c.rec }

// RecordCompute charges dur microseconds of base-SPARC computation to
// the trace (no-op when tracing is off).
func (c *Cell) RecordCompute(dur float64) {
	if c.rec != nil {
		c.rec.Compute(dur)
	}
}

// Alloc allocates a segment of local memory and maps its pages in the
// MMU, as the OS does when a program's data is placed.
func (c *Cell) Alloc(name string, kind mem.Kind, size int64) (*mem.Segment, error) {
	seg, err := c.Mem.Alloc(name, kind, size)
	if err != nil {
		return nil, err
	}
	c.MMU.Map(seg.Base(), seg.Size())
	return seg, nil
}

// AllocFloat64 allocates and maps a float64 segment of n elements.
func (c *Cell) AllocFloat64(name string, n int) (*mem.Segment, []float64, error) {
	seg, err := c.Alloc(name, mem.Float64, int64(n)*8)
	if err != nil {
		return nil, nil, err
	}
	return seg, seg.Float64Data(), nil
}

// AllocBytes allocates and maps a byte segment.
func (c *Cell) AllocBytes(name string, size int64) (*mem.Segment, []byte, error) {
	seg, err := c.Alloc(name, mem.Bytes, size)
	if err != nil {
		return nil, nil, err
	}
	return seg, seg.BytesData(), nil
}

// SetMessageSink installs the SEND/RECEIVE delivery hook (ring
// buffer). Installing twice panics: the hardware has one ring-buffer
// manager.
func (c *Cell) SetMessageSink(s MessageSink) {
	c.sinkMu.Lock()
	defer c.sinkMu.Unlock()
	if c.sink != nil && s != nil {
		panic(fmt.Sprintf("machine: cell %d message sink already installed", c.id))
	}
	c.sink = s
}

// HWBarrier arrives at the cell's partition-wide S-net hardware
// barrier (all cells of the machine when it is unpartitioned).
func (c *Cell) HWBarrier() {
	var start time.Time
	o := c.machine.obs
	if o != nil {
		start = time.Now()
	}
	if s := c.machine.san; s != nil {
		cpu := s.CPU(int(c.id))
		tok := s.BarrierArrive(cpu)
		c.machine.snet.Arrive(int(c.id))
		s.BarrierDone(cpu, tok)
	} else {
		c.machine.snet.Arrive(int(c.id))
	}
	if o != nil {
		d := time.Since(start)
		cc := o.Cell(int(c.id))
		cc.Barriers.Add(1)
		cc.BarrierStallNanos.Add(d.Nanoseconds())
		if tl := o.Timeline(); tl != nil {
			end := o.NowUs()
			tl.Slice(int(c.id), obs.TidCPU, "stall", "barrier", end-float64(d.Nanoseconds())/1e3, float64(d.Nanoseconds())/1e3)
		}
	}
}

// push routes a command into this cell's MSC, tracking it on the
// cell's partition for drain.
func (c *Cell) push(kind queueKind, cmd msc.Command) {
	c.part.q.add(1)
	switch kind {
	case qUser:
		c.MSC.PushUser(cmd)
	case qSystem:
		c.MSC.PushSystem(cmd)
	case qRemote:
		c.MSC.PushRemoteAccess(cmd)
	case qGetReply:
		c.MSC.PushGetReply(cmd)
	case qRloadReply:
		c.MSC.PushRemoteLoadReply(cmd)
	}
}

type queueKind uint8

const (
	qUser queueKind = iota
	qSystem
	qRemote
	qGetReply
	qRloadReply
)

// sanIssue attaches the issuing CPU's released clock to a command
// about to be queued. No-op (one nil check) when unsanitized.
func (c *Cell) sanIssue(cmd *msc.Command) {
	if s := c.machine.san; s != nil {
		cmd.San = s.ReleaseHandle(s.CPU(int(c.id)))
	}
}

// obsIssue counts a command at its issue point. No-op (one nil check,
// no allocation) when the machine is unobserved. The zero-address GET
// the runtime issues behind an acknowledged PUT is counted as AckGet,
// not Get, so Put/Get totals match trace.Stats, which excludes acks.
func (c *Cell) obsIssue(cmd *msc.Command) {
	o := c.machine.obs
	if o == nil {
		return
	}
	cc := o.Cell(int(c.id))
	switch cmd.Op {
	case msc.OpPut:
		if cmd.LStride.Count > 1 || cmd.RStride.Count > 1 {
			cc.PutS.Add(1)
		} else {
			cc.Put.Add(1)
		}
		cc.PutBytes.Add(cmd.LStride.Total())
	case msc.OpGet:
		if cmd.RAddr == 0 {
			cc.AckGet.Add(1)
		} else {
			if cmd.LStride.Count > 1 || cmd.RStride.Count > 1 {
				cc.GetS.Add(1)
			} else {
				cc.Get.Add(1)
			}
			cc.GetBytes.Add(cmd.RStride.Total())
		}
	case msc.OpSend:
		cc.Send.Add(1)
		cc.SendBytes.Add(cmd.LStride.Total())
	case msc.OpRemoteStore:
		cc.RemoteStore.Add(1)
	case msc.OpRemoteLoad:
		cc.RemoteLoad.Add(1)
	case msc.OpAtomic:
		cc.Atomics.Add(1)
	}
	if tl := o.Timeline(); tl != nil {
		tl.Instant(int(c.id), obs.TidCPU, "issue", cmd.Op.String(), o.NowUs())
	}
}

// PushUser submits a user-level PUT/GET/SEND command — the paper's
// "write the parameters one-by-one to the special address" interface.
// The call never blocks: queue overflow spills to DRAM.
func (c *Cell) PushUser(cmd msc.Command) {
	cmd.Src = c.id
	if cmd.Op == msc.OpAtomic && cmd.Tag == 0 {
		c.atoms.Add(1) // non-fetching update: FenceAtomics counts it
	}
	c.sanIssue(&cmd)
	c.obsIssue(&cmd)
	c.push(qUser, cmd)
}

// PushUserBatch submits a run of user commands with one doorbell: the
// source stamp, the sanitizer release, the observability counters, the
// drain accounting and the MSC+ lock are each paid once per batch
// instead of once per command. Semantically identical to calling
// PushUser for each command in order.
func (c *Cell) PushUserBatch(cmds []msc.Command) {
	if len(cmds) == 0 {
		return
	}
	for i := range cmds {
		cmds[i].Src = c.id
		if cmds[i].Op == msc.OpAtomic && cmds[i].Tag == 0 {
			c.atoms.Add(1)
		}
	}
	if s := c.machine.san; s != nil {
		// One released clock covers the whole batch: every command in
		// it is popped by this cell's single controller goroutine, whose
		// first acquire joins the issuing CPU's clock. The rest carry
		// the same handle; acquiring an already-consumed handle is a
		// no-op, and clocks only grow, so ordering is preserved.
		h := s.ReleaseHandle(s.CPU(int(c.id)))
		for i := range cmds {
			cmds[i].San = h
		}
	}
	c.obsIssueBatch(cmds)
	c.part.q.add(int64(len(cmds)))
	c.MSC.PushUserBatch(cmds)
}

// obsIssueBatch is obsIssue amortized over a batch: counters
// accumulate in locals and flush with one atomic add per class, and
// the timeline gets a single issue instant for the whole batch.
func (c *Cell) obsIssueBatch(cmds []msc.Command) {
	o := c.machine.obs
	if o == nil {
		return
	}
	var put, putS, putBytes int64
	var get, getS, ackGet, getBytes int64
	var send, sendBytes, rStore, rLoad, atoms int64
	for i := range cmds {
		cmd := &cmds[i]
		switch cmd.Op {
		case msc.OpPut:
			if cmd.LStride.Count > 1 || cmd.RStride.Count > 1 {
				putS++
			} else {
				put++
			}
			putBytes += cmd.LStride.Total()
		case msc.OpGet:
			if cmd.RAddr == 0 {
				ackGet++
			} else {
				if cmd.LStride.Count > 1 || cmd.RStride.Count > 1 {
					getS++
				} else {
					get++
				}
				getBytes += cmd.RStride.Total()
			}
		case msc.OpSend:
			send++
			sendBytes += cmd.LStride.Total()
		case msc.OpRemoteStore:
			rStore++
		case msc.OpRemoteLoad:
			rLoad++
		case msc.OpAtomic:
			atoms++
		}
	}
	cc := o.Cell(int(c.id))
	for _, u := range [...]struct {
		ctr *atomic.Int64
		n   int64
	}{
		{&cc.Put, put}, {&cc.PutS, putS}, {&cc.PutBytes, putBytes},
		{&cc.Get, get}, {&cc.GetS, getS}, {&cc.AckGet, ackGet}, {&cc.GetBytes, getBytes},
		{&cc.Send, send}, {&cc.SendBytes, sendBytes},
		{&cc.RemoteStore, rStore}, {&cc.RemoteLoad, rLoad},
		{&cc.Atomics, atoms},
	} {
		if u.n != 0 {
			u.ctr.Add(u.n)
		}
	}
	if tl := o.Timeline(); tl != nil {
		tl.Instant(int(c.id), obs.TidCPU, "issue", "batch", o.NowUs())
	}
}

// PushSystem submits a system-level command through the separate
// system queue.
func (c *Cell) PushSystem(cmd msc.Command) {
	cmd.Src = c.id
	c.sanIssue(&cmd)
	c.obsIssue(&cmd)
	c.push(qSystem, cmd)
}

// newLoadWaiter registers a pending remote load and returns its tag
// and completion channel.
func (c *Cell) newLoadWaiter() (int64, chan *mem.Payload) {
	c.loadMu.Lock()
	defer c.loadMu.Unlock()
	c.loadSeq++
	ch := make(chan *mem.Payload, 1)
	c.loads[c.loadSeq] = ch
	return c.loadSeq, ch
}

func (c *Cell) completeLoad(tag int64, p *mem.Payload) {
	c.loadMu.Lock()
	ch, ok := c.loads[tag]
	delete(c.loads, tag)
	c.loadMu.Unlock()
	if !ok {
		c.OS.fault(fmt.Errorf("machine: cell %d: remote load reply for unknown tag %d", c.id, tag))
		return
	}
	ch <- p
}

// RemoteLoad performs a blocking load of size bytes from raddr on
// dst, through the privileged remote-access queue (S4.2: "remote load
// is blocking"). It returns the loaded payload.
func (c *Cell) RemoteLoad(dst topology.CellID, raddr mem.Addr, size int64) (*mem.Payload, error) {
	return c.remoteLoad(dst, raddr, size, false, 0)
}

// RemoteLoadCaching is RemoteLoad with the command's cache-fill bit
// set: the owning cell's MSC+ registers this cell as a sharer of the
// loaded page before capturing the reply, so a later write-through
// store to the page invalidates this cell's cached copy. epoch is the
// loading cell's fill generation for the page, registered with the
// sharer entry so a silent-eviction notice can be ranked against
// later re-fills. Only the DSM page cache issues these.
func (c *Cell) RemoteLoadCaching(dst topology.CellID, raddr mem.Addr, size int64, epoch int32) (*mem.Payload, error) {
	return c.remoteLoad(dst, raddr, size, true, epoch)
}

func (c *Cell) remoteLoad(dst topology.CellID, raddr mem.Addr, size int64, caching bool, epoch int32) (*mem.Payload, error) {
	if size <= 0 {
		return nil, fmt.Errorf("machine: remote load of %d bytes", size)
	}
	tag, ch := c.newLoadWaiter()
	cmd := msc.Command{
		Op: msc.OpRemoteLoad, Src: c.id, Dst: dst,
		RAddr: raddr, RStride: mem.Contiguous(size), Tag: tag,
		CacheFill: caching, Port: epoch,
	}
	c.sanIssue(&cmd)
	c.obsIssue(&cmd)
	c.push(qRemote, cmd)
	p := <-ch
	if p == nil {
		return nil, fmt.Errorf("machine: remote load %d<-%d @%#x faulted", c.id, dst, raddr)
	}
	c.SanAcquirePayload(p)
	return p, nil
}

// RemoteStore performs a non-blocking store of the local range
// [laddr, laddr+size) into raddr on dst. The MSC+ acknowledges
// automatically; completion is observed on the cell's AckFlag.
func (c *Cell) RemoteStore(dst topology.CellID, raddr, laddr mem.Addr, size int64) {
	c.rstores.Add(1)
	cmd := msc.Command{
		Op: msc.OpRemoteStore, Src: c.id, Dst: dst,
		RAddr: raddr, LAddr: laddr,
		RStride: mem.Contiguous(size), LStride: mem.Contiguous(size),
	}
	c.sanIssue(&cmd)
	c.obsIssue(&cmd)
	c.push(qRemote, cmd)
}

// Broadcast sends the local range over the B-net to every cell's
// broadcast inbox.
func (c *Cell) Broadcast(laddr mem.Addr, size int64, tag int64) error {
	c.SanRead(laddr, mem.Contiguous(size), "BROADCAST source read")
	p, err := mem.CapturePayload(c.Mem, laddr, mem.Contiguous(size))
	if err != nil {
		return err
	}
	if s := c.machine.san; s != nil {
		p.SetSan(s.Release(s.CPU(int(c.id))))
	}
	failed := c.machine.bnet.Broadcast(bnet.Message{Src: c.id, Payload: p, Tag: tag})
	c.machine.broadcastFault(c, failed)
	return nil
}

// RecvBroadcast blocks until a broadcast with the given tag arrives
// and returns its payload.
func (c *Cell) RecvBroadcast(tag int64) *mem.Payload {
	c.bcastMu.Lock()
	defer c.bcastMu.Unlock()
	for {
		for i, b := range c.bcasts {
			if b.tag == tag {
				c.bcasts = append(c.bcasts[:i], c.bcasts[i+1:]...)
				c.SanAcquirePayload(b.payload)
				return b.payload
			}
		}
		c.bcastCond.Wait()
	}
}

// RemoteStoresIssued reports how many remote stores this cell has
// issued; with Flags.Wait on mc.RemoteAckFlagID it forms a store
// fence (every issued store acknowledged).
func (c *Cell) RemoteStoresIssued() int64 { return c.rstores.Load() }

// FenceRemoteStores blocks until every remote store issued by this
// cell so far has been acknowledged by its destination MSC+.
func (c *Cell) FenceRemoteStores() {
	c.Flags.Wait(mc.RemoteAckFlagID, c.rstores.Load())
}

// resetJob clears job-scoped state between gang-scheduled jobs, so
// the second job on a partition starts from the same architectural
// state a fresh machine would give it: the flag file, communication
// registers, message sink, pending remote loads, broadcast inbox,
// pending atomics, fence counters, DSM hooks and the OS logs.
// Machine-lifetime state survives — memory segments and MMU mappings
// (the OS does not scrub DRAM between jobs), cumulative metrics
// counters, and trace recorders. Only called with the partition idle:
// no job running, communication fully drained.
func (c *Cell) resetJob() {
	c.Flags.ResetAll()
	c.Cregs.Clear()
	c.sinkMu.Lock()
	c.sink = nil
	c.sinkMu.Unlock()
	c.loadMu.Lock()
	for tag := range c.loads {
		delete(c.loads, tag)
	}
	c.loadSeq = 0
	c.loadMu.Unlock()
	c.bcastMu.Lock()
	c.bcasts = nil
	c.bcastMu.Unlock()
	c.atomicMu.Lock()
	for tag := range c.atomicWait {
		delete(c.atomicWait, tag)
	}
	c.atomicSeq = 0
	c.atomicMu.Unlock()
	c.rstores.Store(0)
	c.atoms.Store(0)
	c.dsmHooks.Store(nil)
	c.OS.reset()
}

// SanRead records a CPU-context read of local memory with the
// sanitizer; library code (dsm, barrier, sendrecv) calls it on the
// accesses it performs on the program's behalf. No-op when the
// machine is unsanitized.
func (c *Cell) SanRead(addr mem.Addr, pat mem.Stride, op string) {
	if s := c.machine.san; s != nil {
		id := int(c.id)
		s.Access(s.CPU(id), id, false, id, uint64(addr), pat.ItemSize, pat.Count, pat.Skip, op)
	}
}

// SanWrite records a CPU-context write of local memory with the
// sanitizer.
func (c *Cell) SanWrite(addr mem.Addr, pat mem.Stride, op string) {
	if s := c.machine.san; s != nil {
		id := int(c.id)
		s.Access(s.CPU(id), id, true, id, uint64(addr), pat.ItemSize, pat.Count, pat.Skip, op)
	}
}

// SanAcquirePayload acquires the sanitizer clock a payload carries
// (SEND ring delivery, broadcast, remote-load reply) into this
// cell's CPU thread. No-op when unsanitized or the payload carries
// no token.
func (c *Cell) SanAcquirePayload(p *mem.Payload) {
	if s := c.machine.san; s != nil {
		s.Acquire(s.CPU(int(c.id)), p.San())
	}
}

// LoadCreg32 performs a blocking p-bit load of communication register
// idx, acquiring the storing thread's sanitizer clock. Synchronization
// protocols (group barriers, register reductions) should load through
// this instead of Cregs.Load32 so the sanitizer sees the handshake.
func (c *Cell) LoadCreg32(idx int) uint32 {
	v := c.Cregs.Load32(idx)
	if s := c.machine.san; s != nil {
		id := int(c.id)
		s.CregLoaded(s.CPU(id), id, idx, 1)
	}
	return v
}

// LoadCreg64 is LoadCreg32 for an aligned 8-byte register pair.
func (c *Cell) LoadCreg64(idx int) uint64 {
	v := c.Cregs.Load64(idx)
	if s := c.machine.san; s != nil {
		id := int(c.id)
		s.CregLoaded(s.CPU(id), id, idx, 2)
	}
	return v
}
