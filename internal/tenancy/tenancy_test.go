package tenancy

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ap1000plus/internal/machine"
)

func newSched(t *testing.T, cfg machine.Config) *Scheduler {
	t.Helper()
	if cfg.Width == 0 {
		cfg.Width, cfg.Height = 4, 2
	}
	if cfg.MemoryPerCell == 0 {
		cfg.MemoryPerCell = 1 << 20
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 2
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchedulerRunsJobs(t *testing.T) {
	s := newSched(t, machine.Config{})
	var ran atomic.Int64
	tickets := make([]*Ticket, 8)
	for i := range tickets {
		tk, err := s.Submit(Job{Program: func(rank, size int, c *machine.Cell) error {
			if rank == 0 {
				ran.Add(1)
			}
			if size != 4 {
				t.Errorf("size = %d, want 4", size)
			}
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	for i, tk := range tickets {
		r := tk.Wait()
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.JobID == 0 {
			t.Errorf("job %d: no ID assigned", i)
		}
		if r.Submitted.After(r.Started) || r.Started.After(r.Done) {
			t.Errorf("job %d: timestamps not monotone: %v ≤ %v ≤ %v",
				i, r.Submitted, r.Started, r.Done)
		}
		if r.Latency() < r.RunLatency() {
			t.Errorf("job %d: sojourn %v < run %v", i, r.Latency(), r.RunLatency())
		}
	}
	if ran.Load() != 8 {
		t.Errorf("ran %d jobs, want 8", ran.Load())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFIFOOrder pins strict FIFO admission: on a single partition,
// jobs complete in submission order.
func TestFIFOOrder(t *testing.T) {
	s := newSched(t, machine.Config{Width: 2, Height: 2, Partitions: 1})
	var mu sync.Mutex
	var order []int64
	const jobs = 6
	tickets := make([]*Ticket, jobs)
	for i := 0; i < jobs; i++ {
		id := int64(i + 1)
		tk, err := s.Submit(Job{ID: id, Program: func(rank, size int, c *machine.Cell) error {
			if rank == 0 {
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
			}
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	for _, tk := range tickets {
		if r := tk.Wait(); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	for i, id := range order {
		if id != int64(i+1) {
			t.Fatalf("completion order %v, want submission order", order)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBestFitPlacement pins placement: on uneven partitions (2,3,3
// cells from 8 cells in 3 groups), a 2-cell job takes the 2-cell
// partition even though bigger ones are free.
func TestBestFitPlacement(t *testing.T) {
	s := newSched(t, machine.Config{Width: 4, Height: 2, Partitions: 3})
	sizes := make([]int, 3)
	for i := range sizes {
		sizes[i] = s.Machine().Partition(i).Size()
	}
	if sizes[0] != 2 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("partition sizes = %v, want [2 3 3]", sizes)
	}
	tk, err := s.Submit(Job{Cells: 2, Program: func(rank, size int, c *machine.Cell) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if r := tk.Wait(); r.Partition != 0 {
		t.Errorf("2-cell job placed on partition %d (size %d), want best-fit 0",
			r.Partition, sizes[r.Partition])
	}
	tk, err = s.Submit(Job{Cells: 3, Program: func(rank, size int, c *machine.Cell) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if r := tk.Wait(); sizes[r.Partition] != 3 {
		t.Errorf("3-cell job placed on partition %d (size %d), want a 3-cell one",
			r.Partition, sizes[r.Partition])
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitErrors(t *testing.T) {
	s := newSched(t, machine.Config{})
	if _, err := s.Submit(Job{}); err == nil {
		t.Error("job without program must be rejected")
	}
	if _, err := s.Submit(Job{Cells: 64, Program: func(rank, size int, c *machine.Cell) error { return nil }}); err == nil {
		t.Error("job larger than every partition must be rejected")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Job{Program: func(rank, size int, c *machine.Cell) error { return nil }}); err == nil {
		t.Error("submit after close must be rejected")
	}
	if err := s.Close(); err == nil {
		t.Error("double close must be rejected")
	}
}

func TestLoadGenDeterministicGaps(t *testing.T) {
	a, b := uint64(42), uint64(42)
	for i := 0; i < 100; i++ {
		if g1, g2 := expGap(&a, 5000), expGap(&b, 5000); g1 != g2 {
			t.Fatalf("gap %d: %v != %v with equal seeds", i, g1, g2)
		}
	}
	c := uint64(43)
	same := true
	a = 42
	for i := 0; i < 10; i++ {
		if expGap(&a, 5000) != expGap(&c, 5000) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical gap sequences")
	}
}

func TestLoadGenRun(t *testing.T) {
	s := newSched(t, machine.Config{})
	var ran atomic.Int64
	start := time.Now()
	res := LoadGen{Jobs: 20, Rate: 4000, Seed: 7}.Run(s, func(i int) Job {
		return Job{Program: func(rank, size int, c *machine.Cell) error {
			if rank == 0 {
				ran.Add(1)
			}
			return nil
		}}
	})
	if len(res) != 20 {
		t.Fatalf("results = %d, want 20", len(res))
	}
	for i, r := range res {
		if r.Err != nil {
			t.Errorf("job %d: %v", i, r.Err)
		}
		if r.Done.Before(start) {
			t.Errorf("job %d: bogus completion time", i)
		}
	}
	if ran.Load() != 20 {
		t.Errorf("ran %d jobs, want 20", ran.Load())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
