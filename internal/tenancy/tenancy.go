// Package tenancy gangs multiple tenants onto one partitioned AP1000+
// machine. A Scheduler owns an opened machine and admits queued jobs
// onto free partitions: each job is gang-scheduled — it gets every
// cell of one partition at once, runs to completion, and releases the
// partition for the next job in line. Admission is FIFO with best-fit
// placement: the head of the queue goes to the smallest free partition
// that holds it, so small jobs cannot starve a large one by stealing
// the only big partition, and a big job at the head blocks until a
// big-enough partition frees (strict FIFO, no reordering).
//
// The machine's partitions provide the isolation: disjoint cell sets,
// a private barrier domain each, and a T-net that refuses
// cross-partition traffic, so one tenant's chaos cannot perturb a
// neighbor's results (see TestChaosTenantIsolation at the repo root).
package tenancy

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ap1000plus/internal/machine"
)

// Job is one gang-scheduled unit of work: a program that needs Cells
// cells of a single partition. The program receives the job-relative
// rank (0..size-1 within the granted partition) alongside the cell,
// so programs are written against logical ranks and run unchanged on
// whichever partition the scheduler picks.
type Job struct {
	// ID tags the job in results; the scheduler assigns one if zero.
	ID int64
	// Cells is the minimum partition size the job needs. Zero means
	// "any partition".
	Cells int
	// Program runs on every cell of the granted partition. rank is the
	// cell's position within the partition, size the partition's cell
	// count.
	Program func(rank, size int, c *machine.Cell) error
}

// Result is the completion record of one job.
type Result struct {
	JobID     int64
	Partition int
	Err       error
	Submitted time.Time
	Started   time.Time
	Done      time.Time
}

// QueueLatency is the time the job waited for a partition.
func (r Result) QueueLatency() time.Duration { return r.Started.Sub(r.Submitted) }

// RunLatency is the time the job held its partition.
func (r Result) RunLatency() time.Duration { return r.Done.Sub(r.Started) }

// Latency is the submit-to-done sojourn time, the per-tenant metric
// the sustained-traffic harness reports as p50/p99.
func (r Result) Latency() time.Duration { return r.Done.Sub(r.Submitted) }

// Ticket is the handle Submit returns; Wait blocks until the job has
// run (or failed) and returns its Result.
type Ticket struct {
	done chan struct{}
	res  Result
}

// Wait blocks until the job completes and returns its result.
func (t *Ticket) Wait() Result {
	<-t.done
	return t.res
}

type pendingJob struct {
	job    Job
	ticket *Ticket
}

// Scheduler is the gang scheduler. New opens the machine; Close
// drains the queue and closes it.
type Scheduler struct {
	m *machine.Machine

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []pendingJob
	free    []bool // free[i]: partition i has no job on it
	cursor  int    // round-robin tiebreak over equal-size partitions
	running int
	nextID  int64
	closed  bool
}

// New wraps m in a scheduler and opens it. The machine must be
// partitioned the way the tenants expect (machine.Config.Partitions);
// a single-partition machine degenerates to a serial batch queue.
func New(m *machine.Machine) (*Scheduler, error) {
	if err := m.Open(); err != nil {
		return nil, err
	}
	s := &Scheduler{
		m:    m,
		free: make([]bool, m.Partitions()),
	}
	for i := range s.free {
		s.free[i] = true
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Machine exposes the scheduled machine, e.g. for metrics.
func (s *Scheduler) Machine() *machine.Machine { return s.m }

// Submit enqueues a job and returns immediately with its ticket.
// Errors are synchronous only for jobs that can never run (no
// program, larger than every partition, scheduler closed).
func (s *Scheduler) Submit(job Job) (*Ticket, error) {
	if job.Program == nil {
		return nil, errors.New("tenancy: job has no program")
	}
	largest := 0
	for i := 0; i < s.m.Partitions(); i++ {
		if n := s.m.Partition(i).Size(); n > largest {
			largest = n
		}
	}
	if job.Cells > largest {
		return nil, fmt.Errorf("tenancy: job needs %d cells but the largest partition has %d", job.Cells, largest)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("tenancy: scheduler is closed")
	}
	if job.ID == 0 {
		s.nextID++
		job.ID = s.nextID
	}
	t := &Ticket{done: make(chan struct{})}
	t.res.JobID = job.ID
	t.res.Submitted = time.Now()
	s.queue = append(s.queue, pendingJob{job: job, ticket: t})
	s.dispatchLocked()
	return t, nil
}

// dispatchLocked admits queue heads onto free partitions until the
// head cannot be placed. Placement is best-fit (smallest free
// partition that holds the job); ties go round-robin via the cursor
// so equal partitions share work under light load. Callers hold s.mu.
func (s *Scheduler) dispatchLocked() {
	for len(s.queue) > 0 {
		head := s.queue[0]
		part := s.pickLocked(head.job.Cells)
		if part < 0 {
			return // strict FIFO: the head waits, nobody jumps it
		}
		s.queue = s.queue[1:]
		s.free[part] = false
		s.running++
		go s.runJob(part, head)
	}
}

// pickLocked returns the best-fit free partition for a job needing n
// cells, or -1. Among equal-size candidates the one at or after the
// rotating cursor wins.
func (s *Scheduler) pickLocked(n int) int {
	best, bestSize := -1, 0
	k := len(s.free)
	for off := 0; off < k; off++ {
		i := (s.cursor + off) % k
		if !s.free[i] {
			continue
		}
		size := s.m.Partition(i).Size()
		if size < n {
			continue
		}
		if best < 0 || size < bestSize {
			best, bestSize = i, size
		}
	}
	if best >= 0 {
		s.cursor = (best + 1) % k
	}
	return best
}

// runJob executes one admitted job on its granted partition, fills in
// the ticket, and frees the partition for the next dispatch.
func (s *Scheduler) runJob(part int, pj pendingJob) {
	g := s.m.Partition(part).Group()
	size := g.Size()
	pj.ticket.res.Partition = part
	pj.ticket.res.Started = time.Now()
	err := s.m.RunJob(part, func(c *machine.Cell) error {
		rank, ok := g.Rank(c.ID())
		if !ok {
			return fmt.Errorf("tenancy: cell %d not in partition %d", c.ID(), part)
		}
		return pj.job.Program(rank, size, c)
	})
	pj.ticket.res.Err = err
	pj.ticket.res.Done = time.Now()
	close(pj.ticket.done)

	s.mu.Lock()
	s.free[part] = true
	s.running--
	s.dispatchLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Drain blocks until every submitted job has completed.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	for len(s.queue) > 0 || s.running > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Close rejects further submissions, drains in-flight jobs, and
// closes the machine.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("tenancy: scheduler already closed")
	}
	s.closed = true
	s.mu.Unlock()
	s.Drain()
	return s.m.Close()
}
