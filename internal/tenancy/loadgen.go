package tenancy

import (
	"math"
	"time"
)

// LoadGen replays an open-loop stream of job arrivals against a
// scheduler: inter-arrival gaps are exponential (a Poisson process at
// Rate jobs/sec), and arrivals do not wait for completions — exactly
// the sustained-traffic shape that exposes queueing behaviour a
// closed-loop benchmark hides.
type LoadGen struct {
	// Jobs is the number of arrivals to generate.
	Jobs int
	// Rate is the mean arrival rate in jobs per second. Zero or
	// negative means "as fast as possible" (no gaps).
	Rate float64
	// Seed drives the deterministic arrival-gap sequence.
	Seed uint64
}

// splitmix64 is the PRNG behind the arrival gaps: tiny, seedable, and
// identical everywhere, so a load profile replays exactly.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// expGap draws one exponential inter-arrival gap at the given rate.
func expGap(state *uint64, rate float64) time.Duration {
	u := (float64(splitmix64(state)>>11) + 0.5) / (1 << 53) // (0,1)
	return time.Duration(-math.Log(u) / rate * float64(time.Second))
}

// Run generates g.Jobs arrivals, submitting mk(i) for the i-th, then
// waits for all of them and returns the results in arrival order.
// Arrivals are paced against absolute deadlines (start + cumulative
// gaps), not relative sleeps, so timer overshoot on one gap does not
// accumulate — a generator that falls behind schedule catches up by
// submitting immediately, keeping the offered rate honest.
// Submission errors surface as Results with Err set and zero Started.
func (g LoadGen) Run(s *Scheduler, mk func(i int) Job) []Result {
	state := g.Seed
	tickets := make([]*Ticket, 0, g.Jobs)
	results := make([]Result, g.Jobs)
	next := time.Now()
	for i := 0; i < g.Jobs; i++ {
		if g.Rate > 0 && i > 0 {
			next = next.Add(expGap(&state, g.Rate))
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
		t, err := s.Submit(mk(i))
		if err != nil {
			results[i] = Result{Err: err, Submitted: time.Now()}
			tickets = append(tickets, nil)
			continue
		}
		tickets = append(tickets, t)
	}
	for i, t := range tickets {
		if t != nil {
			results[i] = t.Wait()
		}
	}
	return results
}
