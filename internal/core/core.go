// Package core is the paper's primary contribution as a library: the
// user-level PUT/GET interface of S2.2 and S3.1.
//
//	put(node_id, raddr, laddr, size, send_flag, recv_flag, ack)
//	get(node_id, raddr, laddr, size, send_flag, recv_flag)
//	put_stride(...), get_stride(...)
//	readRemote(node_id, raddr, laddr, size)
//	writeRemote(node_id, raddr, laddr, size)
//
// PUT copies a local memory block to remote memory and increments
// flags on both sides when the respective DMA completes; GET fetches
// a remote block. Both are non-blocking and split-phase, so
// communication and computation overlap; synchronization is the
// program checking flag values — exactly the behaviour the
// parallelizing compiler needs.
//
// Completion of writes is detected with the Ack & Barrier model
// (S2.2): every acknowledged PUT bumps the cell's implicit
// acknowledge flag via a zero-address GET that rides the same
// in-order channel (S4.1); AckWait blocks until all outstanding
// acknowledgements arrived, after which the program may enter a
// barrier.
package core

import (
	"fmt"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

// MaxTransfer is the largest single DMA the send controller accepts:
// "from 1 word (4 byte) to 1 megaword (4 megabytes)" (S4.1).
const MaxTransfer = 4 << 20

// Comm is one cell's PUT/GET endpoint.
type Comm struct {
	cell *machine.Cell
	// rts marks traced operations as issued by the run-time system
	// (the VPP Fortran runtime constructs its Comm with NewRTS).
	rts bool
	// acks counts acknowledgements requested so far; AckWait's target.
	acks int64
	// rrFlag serializes blocking ReadRemote calls.
	rrFlag  mc.FlagID
	rrCount int64
}

// New builds the PUT/GET interface for a cell.
func New(cell *machine.Cell) *Comm {
	return &Comm{cell: cell, rrFlag: cell.Flags.Alloc()}
}

// NewRTS builds a Comm whose traced operations carry the run-time
// system attribution (MLSim charges rts_op_time for them).
func NewRTS(cell *machine.Cell) *Comm {
	c := New(cell)
	c.rts = true
	return c
}

// Cell returns the underlying cell.
func (c *Comm) Cell() *machine.Cell { return c.cell }

func (c *Comm) validate(dst topology.CellID, pat mem.Stride) error {
	if !c.cell.Machine().Torus().Valid(dst) {
		return fmt.Errorf("core: invalid destination cell %d", dst)
	}
	if err := pat.Validate(); err != nil {
		return err
	}
	if pat.Total() > MaxTransfer {
		return fmt.Errorf("core: transfer of %d bytes exceeds the %d-byte DMA limit", pat.Total(), MaxTransfer)
	}
	return nil
}

// Put copies size bytes from laddr in local memory to raddr on dst.
// It returns as soon as the command is queued (a few stores into the
// MSC+). sendFlag is incremented locally when the send DMA completes
// (the source area may then be reused); recvFlag is incremented on
// dst when the receive DMA completes. With ack, the cell's implicit
// acknowledge flag rises when the destination has consumed the data.
func (c *Comm) Put(dst topology.CellID, raddr, laddr mem.Addr, size int64, sendFlag, recvFlag mc.FlagID, ack bool) error {
	return c.PutStride(dst, raddr, laddr, sendFlag, recvFlag, ack, mem.Contiguous(size), mem.Contiguous(size))
}

// PutStride is Put with independent one-dimensional stride patterns
// on the sending and receiving side (Figure 3). The payload totals of
// the two patterns must match.
func (c *Comm) PutStride(dst topology.CellID, raddr, laddr mem.Addr, sendFlag, recvFlag mc.FlagID, ack bool, sendPat, recvPat mem.Stride) error {
	if err := c.validate(dst, sendPat); err != nil {
		return err
	}
	if err := recvPat.Validate(); err != nil {
		return err
	}
	if sendPat.Total() != recvPat.Total() {
		return fmt.Errorf("core: put payload mismatch: send %d bytes, recv %d", sendPat.Total(), recvPat.Total())
	}
	if rec := c.cell.Recorder(); rec != nil {
		items := sendPat.Count
		if recvPat.Count > sendPat.Count {
			items = recvPat.Count
		}
		rec.Put(dst, sendPat.Total(), items, trace.FlagID(sendFlag), trace.FlagID(recvFlag), ack, c.rts)
	}
	c.cell.PushUser(msc.Command{
		Op: msc.OpPut, Dst: dst,
		RAddr: raddr, LAddr: laddr,
		RStride: recvPat, LStride: sendPat,
		SendFlag: sendFlag, RecvFlag: recvFlag,
	})
	if ack {
		c.pushAckGet(dst)
	}
	return nil
}

// pushAckGet issues the S4.1 acknowledge: a GET to address 0 behind
// the PUT on the same in-order channel. The reply bumps the implicit
// acknowledge flag.
func (c *Comm) pushAckGet(dst topology.CellID) {
	c.acks++
	c.cell.PushUser(msc.Command{
		Op: msc.OpGet, Dst: dst,
		RAddr: 0, LAddr: 0,
		RStride: mem.Contiguous(1), LStride: mem.Contiguous(1),
		RecvFlag: mc.AckFlagID,
	})
}

// Get retrieves size bytes from raddr on dst into laddr locally.
// sendFlag names a flag on dst (incremented when dst's reply DMA
// completes); recvFlag is incremented locally when the data arrived.
func (c *Comm) Get(dst topology.CellID, raddr, laddr mem.Addr, size int64, sendFlag, recvFlag mc.FlagID) error {
	return c.GetStride(dst, raddr, laddr, sendFlag, recvFlag, mem.Contiguous(size), mem.Contiguous(size))
}

// GetStride is Get with stride patterns: sendPat describes the layout
// at the remote (data-sending) side, recvPat the local layout.
func (c *Comm) GetStride(dst topology.CellID, raddr, laddr mem.Addr, sendFlag, recvFlag mc.FlagID, sendPat, recvPat mem.Stride) error {
	if err := c.validate(dst, sendPat); err != nil {
		return err
	}
	if err := recvPat.Validate(); err != nil {
		return err
	}
	if sendPat.Total() != recvPat.Total() {
		return fmt.Errorf("core: get payload mismatch: send %d bytes, recv %d", sendPat.Total(), recvPat.Total())
	}
	if rec := c.cell.Recorder(); rec != nil {
		items := sendPat.Count
		if recvPat.Count > sendPat.Count {
			items = recvPat.Count
		}
		rec.Get(dst, sendPat.Total(), items, trace.FlagID(sendFlag), trace.FlagID(recvFlag), c.rts)
	}
	c.cell.PushUser(msc.Command{
		Op: msc.OpGet, Dst: dst,
		RAddr: raddr, LAddr: laddr,
		RStride: sendPat, LStride: recvPat,
		SendFlag: sendFlag, RecvFlag: recvFlag,
	})
	return nil
}

// WaitFlag blocks until the local flag reaches target — the program's
// flag-check loop, with the wait time visible to MLSim as idle time.
func (c *Comm) WaitFlag(flag mc.FlagID, target int64) {
	if rec := c.cell.Recorder(); rec != nil {
		rec.FlagWait(trace.FlagID(flag), target)
	}
	c.cell.Flags.Wait(flag, target)
}

// AcksIssued reports how many acknowledged PUTs were issued.
func (c *Comm) AcksIssued() int64 { return c.acks }

// AckWait blocks until every acknowledgement requested so far has
// arrived — the "Ack" half of the Ack & Barrier model.
func (c *Comm) AckWait() {
	if c.acks == 0 {
		return
	}
	c.WaitFlag(mc.AckFlagID, c.acks)
}

// WriteRemote is the translator's non-blocking direct remote write
// (S2.2): a PUT with an acknowledgement and no user flags. Completion
// of all writes is observed with AckWait before a barrier.
func (c *Comm) WriteRemote(dst topology.CellID, raddr, laddr mem.Addr, size int64) error {
	return c.Put(dst, raddr, laddr, size, mc.NoFlag, mc.NoFlag, true)
}

// ReadRemote is the translator's blocking direct remote read (S2.2):
// a GET that waits for the reply data before returning. "To detect
// the completion of readRemote is easy, because reply data returns
// and update the flag."
func (c *Comm) ReadRemote(dst topology.CellID, raddr, laddr mem.Addr, size int64) error {
	if err := c.Get(dst, raddr, laddr, size, mc.NoFlag, c.rrFlag); err != nil {
		return err
	}
	c.rrCount++
	c.WaitFlag(c.rrFlag, c.rrCount)
	return nil
}

// Barrier arrives at the all-cells hardware barrier (S-net) and
// records the synchronization in the trace.
func (c *Comm) Barrier() {
	if rec := c.cell.Recorder(); rec != nil {
		rec.Barrier(trace.AllGroup)
	}
	c.cell.HWBarrier()
}

// Compute charges dur microseconds of base-SPARC computation to the
// trace; it is how applications expose their work to MLSim.
func (c *Comm) Compute(dur float64) { c.cell.RecordCompute(dur) }
