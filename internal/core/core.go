// Package core is the paper's primary contribution as a library: the
// user-level PUT/GET interface of S2.2 and S3.1.
//
//	put(node_id, raddr, laddr, size, send_flag, recv_flag, ack)
//	get(node_id, raddr, laddr, size, send_flag, recv_flag)
//	put_stride(...), get_stride(...)
//	readRemote(node_id, raddr, laddr, size)
//	writeRemote(node_id, raddr, laddr, size)
//
// PUT copies a local memory block to remote memory and increments
// flags on both sides when the respective DMA completes; GET fetches
// a remote block. Both are non-blocking and split-phase, so
// communication and computation overlap; synchronization is the
// program checking flag values — exactly the behaviour the
// parallelizing compiler needs.
//
// Completion of writes is detected with the Ack & Barrier model
// (S2.2): every acknowledged PUT bumps the cell's implicit
// acknowledge flag via a zero-address GET that rides the same
// in-order channel (S4.1); AckWait blocks until all outstanding
// acknowledgements arrived, after which the program may enter a
// barrier.
package core

import (
	"fmt"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

// MaxTransfer is the largest single DMA the send controller accepts:
// "from 1 word (4 byte) to 1 megaword (4 megabytes)" (S4.1).
const MaxTransfer = 4 << 20

// Typed sentinel errors, re-exported from machine so users of the
// PUT/GET interface branch with errors.Is without importing the
// machine package.
var (
	// ErrBadAddress marks an invalid destination cell.
	ErrBadAddress = machine.ErrBadAddress
	// ErrBadStride marks an invalid transfer shape: malformed stride,
	// mismatched payload totals, or a transfer over MaxTransfer.
	ErrBadStride = machine.ErrBadStride
	// ErrQueueFull marks a CommandList that outgrew MaxBatch.
	ErrQueueFull = machine.ErrQueueFull
	// ErrRetryBudget marks a transfer abandoned under a fault plan's
	// retry budget (machine.CellFault wraps it).
	ErrRetryBudget = machine.ErrRetryBudget
)

// Transfer describes one PUT or GET in options-struct form — the
// paper's positional put(node_id, raddr, laddr, size, send_flag,
// recv_flag, ack) with the parameters named, so call sites read like
// the figure instead of a run of bare integers.
type Transfer struct {
	// To is the destination cell (the data holder for a GET).
	To topology.CellID
	// Remote is the address on To (PUT destination, GET source).
	Remote mem.Addr
	// Local is the address on the issuing cell (PUT source, GET
	// destination).
	Local mem.Addr
	// Size is the contiguous transfer length in bytes. Ignored by the
	// stride forms, which take explicit patterns.
	Size int64
	// SendFlag is incremented on the data-sending cell when its send
	// DMA completes; RecvFlag on the data-receiving cell when its
	// receive DMA completes.
	SendFlag mc.FlagID
	RecvFlag mc.FlagID
	// Ack requests the S4.1 acknowledgement round trip for a PUT (the
	// implicit acknowledge flag rises when the destination consumed
	// the data). Ignored by GET, whose reply is its own completion.
	Ack bool
}

// Comm is one cell's PUT/GET endpoint.
type Comm struct {
	cell *machine.Cell
	// rts marks traced operations as issued by the run-time system
	// (the VPP Fortran runtime constructs its Comm with NewRTS).
	rts bool
	// acks counts acknowledgements requested so far; AckWait's target.
	acks int64
	// rrFlag serializes blocking ReadRemote calls.
	rrFlag  mc.FlagID
	rrCount int64
	// batch is the cell's reusable CommandList (Batch); its buffers
	// persist across commits so steady-state batched issue does not
	// allocate.
	batch CommandList
}

// New builds the PUT/GET interface for a cell.
func New(cell *machine.Cell) *Comm {
	return &Comm{cell: cell, rrFlag: cell.Flags.Alloc()}
}

// NewRTS builds a Comm whose traced operations carry the run-time
// system attribution (MLSim charges rts_op_time for them).
func NewRTS(cell *machine.Cell) *Comm {
	c := New(cell)
	c.rts = true
	return c
}

// Cell returns the underlying cell.
func (c *Comm) Cell() *machine.Cell { return c.cell }

func (c *Comm) validate(dst topology.CellID, pat mem.Stride) error {
	if !c.cell.Machine().Torus().Valid(dst) {
		return fmt.Errorf("core: invalid destination cell %d: %w", dst, ErrBadAddress)
	}
	if err := pat.Validate(); err != nil {
		return fmt.Errorf("core: %w: %v", ErrBadStride, err)
	}
	if pat.Total() > MaxTransfer {
		return fmt.Errorf("core: transfer of %d bytes exceeds the %d-byte DMA limit: %w", pat.Total(), MaxTransfer, ErrBadStride)
	}
	return nil
}

// Put copies t.Size bytes from t.Local in local memory to t.Remote on
// t.To. It returns as soon as the command is queued (a few stores
// into the MSC+); the flags in t signal DMA completion on each side.
func (c *Comm) Put(t Transfer) error {
	return c.PutStride(t.To, t.Remote, t.Local, t.SendFlag, t.RecvFlag, t.Ack, mem.Contiguous(t.Size), mem.Contiguous(t.Size))
}

// PutStride is Put with independent one-dimensional stride patterns
// on the sending and receiving side (Figure 3). The payload totals of
// the two patterns must match.
func (c *Comm) PutStride(dst topology.CellID, raddr, laddr mem.Addr, sendFlag, recvFlag mc.FlagID, ack bool, sendPat, recvPat mem.Stride) error {
	if err := c.validate(dst, sendPat); err != nil {
		return err
	}
	if err := recvPat.Validate(); err != nil {
		return err
	}
	if sendPat.Total() != recvPat.Total() {
		return fmt.Errorf("core: put payload mismatch: send %d bytes, recv %d: %w", sendPat.Total(), recvPat.Total(), ErrBadStride)
	}
	if rec := c.cell.Recorder(); rec != nil {
		items := sendPat.Count
		if recvPat.Count > sendPat.Count {
			items = recvPat.Count
		}
		rec.Put(dst, sendPat.Total(), items, trace.FlagID(sendFlag), trace.FlagID(recvFlag), ack, c.rts)
	}
	c.cell.PushUser(msc.Command{
		Op: msc.OpPut, Dst: dst,
		RAddr: raddr, LAddr: laddr,
		RStride: recvPat, LStride: sendPat,
		SendFlag: sendFlag, RecvFlag: recvFlag,
	})
	if ack {
		c.pushAckGet(dst)
	}
	return nil
}

// ackCommand builds the S4.1 acknowledge: a GET to address 0 behind
// the PUT(s) on the same in-order channel. The reply bumps the
// implicit acknowledge flag.
func ackCommand(dst topology.CellID) msc.Command {
	return msc.Command{
		Op: msc.OpGet, Dst: dst,
		RAddr: 0, LAddr: 0,
		RStride: mem.Contiguous(1), LStride: mem.Contiguous(1),
		RecvFlag: mc.AckFlagID,
	}
}

func (c *Comm) pushAckGet(dst topology.CellID) {
	c.acks++
	c.cell.PushUser(ackCommand(dst))
}

// Get retrieves t.Size bytes from t.Remote on t.To into t.Local
// locally. t.SendFlag names a flag on the remote cell (incremented
// when its reply DMA completes); t.RecvFlag is incremented locally
// when the data arrived. t.Ack is ignored: the reply is a GET's own
// completion signal.
func (c *Comm) Get(t Transfer) error {
	return c.GetStride(t.To, t.Remote, t.Local, t.SendFlag, t.RecvFlag, mem.Contiguous(t.Size), mem.Contiguous(t.Size))
}

// GetStride is Get with stride patterns: sendPat describes the layout
// at the remote (data-sending) side, recvPat the local layout.
func (c *Comm) GetStride(dst topology.CellID, raddr, laddr mem.Addr, sendFlag, recvFlag mc.FlagID, sendPat, recvPat mem.Stride) error {
	if err := c.validate(dst, sendPat); err != nil {
		return err
	}
	if err := recvPat.Validate(); err != nil {
		return err
	}
	if sendPat.Total() != recvPat.Total() {
		return fmt.Errorf("core: get payload mismatch: send %d bytes, recv %d: %w", sendPat.Total(), recvPat.Total(), ErrBadStride)
	}
	if rec := c.cell.Recorder(); rec != nil {
		items := sendPat.Count
		if recvPat.Count > sendPat.Count {
			items = recvPat.Count
		}
		rec.Get(dst, sendPat.Total(), items, trace.FlagID(sendFlag), trace.FlagID(recvFlag), c.rts)
	}
	c.cell.PushUser(msc.Command{
		Op: msc.OpGet, Dst: dst,
		RAddr: raddr, LAddr: laddr,
		RStride: sendPat, LStride: recvPat,
		SendFlag: sendFlag, RecvFlag: recvFlag,
	})
	return nil
}

// WaitFlag blocks until the local flag reaches target — the program's
// flag-check loop, with the wait time visible to MLSim as idle time.
func (c *Comm) WaitFlag(flag mc.FlagID, target int64) {
	if rec := c.cell.Recorder(); rec != nil {
		rec.FlagWait(trace.FlagID(flag), target)
	}
	c.cell.Flags.Wait(flag, target)
}

// AcksIssued reports how many acknowledged PUTs were issued.
func (c *Comm) AcksIssued() int64 { return c.acks }

// AckWait blocks until every acknowledgement requested so far has
// arrived — the "Ack" half of the Ack & Barrier model.
func (c *Comm) AckWait() {
	if c.acks == 0 {
		return
	}
	c.WaitFlag(mc.AckFlagID, c.acks)
}

// WriteRemote is the translator's non-blocking direct remote write
// (S2.2): a PUT with an acknowledgement and no user flags. Completion
// of all writes is observed with AckWait before a barrier.
func (c *Comm) WriteRemote(dst topology.CellID, raddr, laddr mem.Addr, size int64) error {
	return c.Put(Transfer{To: dst, Remote: raddr, Local: laddr, Size: size, Ack: true})
}

// ReadRemote is the translator's blocking direct remote read (S2.2):
// a GET that waits for the reply data before returning. "To detect
// the completion of readRemote is easy, because reply data returns
// and update the flag."
func (c *Comm) ReadRemote(dst topology.CellID, raddr, laddr mem.Addr, size int64) error {
	if err := c.Get(Transfer{To: dst, Remote: raddr, Local: laddr, Size: size, RecvFlag: c.rrFlag}); err != nil {
		return err
	}
	c.rrCount++
	c.WaitFlag(c.rrFlag, c.rrCount)
	return nil
}

// Barrier arrives at the all-cells hardware barrier (S-net) and
// records the synchronization in the trace.
func (c *Comm) Barrier() {
	if rec := c.cell.Recorder(); rec != nil {
		rec.Barrier(trace.AllGroup)
	}
	c.cell.HWBarrier()
}

// Compute charges dur microseconds of base-SPARC computation to the
// trace; it is how applications expose their work to MLSim.
func (c *Comm) Compute(dur float64) { c.cell.RecordCompute(dur) }
