package core

import (
	"errors"
	"strings"
	"testing"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

// fixture builds a 2x2 machine with one float64 segment per cell.
type fixture struct {
	m     *machine.Machine
	segs  []*mem.Segment
	datas [][]float64
}

func newFixture(t testing.TB, traceApp string, elems int) *fixture {
	t.Helper()
	m, err := machine.New(machine.Config{Width: 2, Height: 2, MemoryPerCell: 1 << 22, TraceApp: traceApp})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{m: m}
	for id := 0; id < 4; id++ {
		seg, data, err := m.Cell(topology.CellID(id)).AllocFloat64("buf", elems)
		if err != nil {
			t.Fatal(err)
		}
		f.segs = append(f.segs, seg)
		f.datas = append(f.datas, data)
	}
	return f
}

func TestPutWithFlags(t *testing.T) {
	f := newFixture(t, "", 8)
	rf := f.m.Cell(1).Flags.Alloc()
	sf := f.m.Cell(0).Flags.Alloc()
	err := f.m.Run(func(cell *machine.Cell) error {
		c := New(cell)
		switch cell.ID() {
		case 0:
			for i := range f.datas[0] {
				f.datas[0][i] = float64(i) + 0.5
			}
			if err := c.Put(Transfer{To: 1, Remote: f.segs[1].Base(), Local: f.segs[0].Base(), Size: 64, SendFlag: sf, RecvFlag: rf}); err != nil {
				return err
			}
			c.WaitFlag(sf, 1)
		case 1:
			c.WaitFlag(rf, 1)
			for i, v := range f.datas[1] {
				if v != float64(i)+0.5 {
					t.Errorf("data[%d] = %v", i, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAckAndBarrierModel(t *testing.T) {
	// Every cell writes one value into every other cell, uses
	// AckWait + Barrier, then checks what it received — the data
	// parallel pattern of S2.2, with no per-transfer receive flags.
	f := newFixture(t, "", 8)
	err := f.m.Run(func(cell *machine.Cell) error {
		c := New(cell)
		me := int(cell.ID())
		f.datas[me][4+me] = 100 + float64(me) // slot to publish
		for dst := 0; dst < 4; dst++ {
			if dst == me {
				continue
			}
			// Write my value into slot `me` of dst's array.
			raddr := f.segs[dst].Base() + mem.Addr(me*8)
			laddr := f.segs[me].Base() + mem.Addr((4+me)*8)
			if err := c.WriteRemote(topology.CellID(dst), raddr, laddr, 8); err != nil {
				return err
			}
		}
		if c.AcksIssued() != 3 {
			t.Errorf("cell %d acks issued = %d", me, c.AcksIssued())
		}
		c.AckWait()
		c.Barrier()
		for src := 0; src < 4; src++ {
			if src == me {
				continue
			}
			if got := f.datas[me][src]; got != 100+float64(src) {
				t.Errorf("cell %d slot %d = %v", me, src, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadRemoteBlocking(t *testing.T) {
	f := newFixture(t, "", 8)
	err := f.m.Run(func(cell *machine.Cell) error {
		c := New(cell)
		if cell.ID() == 3 {
			f.datas[3][0] = 77.25
		}
		c.Barrier()
		if cell.ID() == 0 {
			// Two sequential blocking reads through one flag.
			if err := c.ReadRemote(3, f.segs[3].Base(), f.segs[0].Base(), 8); err != nil {
				return err
			}
			if f.datas[0][0] != 77.25 {
				t.Errorf("first read = %v", f.datas[0][0])
			}
			if err := c.ReadRemote(3, f.segs[3].Base(), f.segs[0].Base()+8, 8); err != nil {
				return err
			}
			if f.datas[0][1] != 77.25 {
				t.Errorf("second read = %v", f.datas[0][1])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutStrideGetStride(t *testing.T) {
	f := newFixture(t, "", 16)
	rf := f.m.Cell(1).Flags.Alloc()
	gf := f.m.Cell(0).Flags.Alloc()
	err := f.m.Run(func(cell *machine.Cell) error {
		c := New(cell)
		switch cell.ID() {
		case 0:
			for i := range f.datas[0] {
				f.datas[0][i] = float64(i)
			}
			// Scatter: contiguous 4 elements -> every 4th slot at dst.
			err := c.PutStride(1, f.segs[1].Base(), f.segs[0].Base(), mc.NoFlag, rf, false,
				mem.Contiguous(32), mem.Stride{ItemSize: 8, Count: 4, Skip: 24})
			if err != nil {
				return err
			}
			// Gather back: every 4th slot at dst -> contiguous here.
			err = c.GetStride(1, f.segs[1].Base(), f.segs[0].Base()+8*8, mc.NoFlag, gf,
				mem.Stride{ItemSize: 8, Count: 4, Skip: 24}, mem.Contiguous(32))
			if err != nil {
				return err
			}
			c.WaitFlag(gf, 1)
			for i := 0; i < 4; i++ {
				if f.datas[0][8+i] != float64(i) {
					t.Errorf("gathered[%d] = %v", i, f.datas[0][8+i])
				}
			}
		case 1:
			c.WaitFlag(rf, 1)
			for i := 0; i < 4; i++ {
				if f.datas[1][i*4] != float64(i) {
					t.Errorf("scattered[%d] = %v", i*4, f.datas[1][i*4])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidationErrors(t *testing.T) {
	f := newFixture(t, "", 8)
	err := f.m.Run(func(cell *machine.Cell) error {
		if cell.ID() != 0 {
			return nil
		}
		c := New(cell)
		cases := []struct {
			name string
			err  error
			want error
		}{
			{"bad dst", c.Put(Transfer{To: 99, Remote: f.segs[0].Base(), Local: f.segs[0].Base(), Size: 8}), ErrBadAddress},
			{"zero size", c.Put(Transfer{To: 1, Remote: f.segs[1].Base(), Local: f.segs[0].Base(), Size: 0}), ErrBadStride},
			{"negative size", c.Put(Transfer{To: 1, Remote: f.segs[1].Base(), Local: f.segs[0].Base(), Size: -8}), ErrBadStride},
			{"huge", c.Put(Transfer{To: 1, Remote: f.segs[1].Base(), Local: f.segs[0].Base(), Size: MaxTransfer + 1}), ErrBadStride},
			{"mismatch", c.PutStride(1, f.segs[1].Base(), f.segs[0].Base(), 0, 0, false,
				mem.Contiguous(16), mem.Contiguous(32)), ErrBadStride},
			{"get mismatch", c.GetStride(1, f.segs[1].Base(), f.segs[0].Base(), 0, 0,
				mem.Contiguous(16), mem.Contiguous(32)), ErrBadStride},
		}
		for _, tc := range cases {
			if tc.err == nil {
				t.Errorf("%s: expected error", tc.name)
			} else if !errors.Is(tc.err, tc.want) {
				t.Errorf("%s: err %v is not %v", tc.name, tc.err, tc.want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTraceAttribution(t *testing.T) {
	f := newFixture(t, "attr", 8)
	err := f.m.Run(func(cell *machine.Cell) error {
		if cell.ID() != 0 {
			return nil
		}
		user := New(cell)
		rts := NewRTS(cell)
		if err := user.Put(Transfer{To: 1, Remote: f.segs[1].Base(), Local: f.segs[0].Base(), Size: 8}); err != nil {
			return err
		}
		if err := rts.PutStride(1, f.segs[1].Base(), f.segs[0].Base(), 0, 0, true,
			mem.Stride{ItemSize: 8, Count: 4, Skip: 8}, mem.Contiguous(32)); err != nil {
			return err
		}
		rts.AckWait()
		user.Compute(12.5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := f.m.Trace()
	evs := ts.PE[0]
	var puts, flagWaits int
	for _, e := range evs {
		switch e.Kind {
		case trace.KindPut:
			puts++
			if e.Items > 1 { // the stride one
				if !e.RTS || !e.Ack {
					t.Errorf("stride put attribution: %+v", e)
				}
			} else if e.RTS {
				t.Errorf("user put marked RTS: %+v", e)
			}
		case trace.KindFlagWait:
			flagWaits++
			if e.Flag != trace.AckFlag || e.Target != 1 {
				t.Errorf("ack wait event: %+v", e)
			}
		}
	}
	if puts != 2 || flagWaits != 1 {
		t.Errorf("puts=%d flagWaits=%d", puts, flagWaits)
	}
	row := trace.Stats(ts)
	if row.Put != 0.25 || row.PutS != 0.25 {
		t.Errorf("stats = %+v", row)
	}
}

func TestAckWaitNoAcksReturnsImmediately(t *testing.T) {
	f := newFixture(t, "", 8)
	err := f.m.Run(func(cell *machine.Cell) error {
		New(cell).AckWait() // must not block
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestManySmallPutsOverflowQueue pushes far more than 8 commands
// without draining, forcing DRAM spills, and verifies nothing is
// lost — the S4.1 overflow mechanism end to end.
func TestManySmallPutsOverflowQueue(t *testing.T) {
	f := newFixture(t, "", 1024)
	rf := f.m.Cell(2).Flags.Alloc()
	const n = 500
	err := f.m.Run(func(cell *machine.Cell) error {
		c := New(cell)
		if cell.ID() == 0 {
			for i := 0; i < n; i++ {
				raddr := f.segs[2].Base() + mem.Addr((i%1024)*8)
				laddr := f.segs[0].Base() + mem.Addr((i%1024)*8)
				f.datas[0][i%1024] = float64(i)
				if err := c.Put(Transfer{To: 2, Remote: raddr, Local: laddr, Size: 8, RecvFlag: rf}); err != nil {
					return err
				}
			}
		}
		if cell.ID() == 2 {
			c.WaitFlag(rf, n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.m.Cell(2).Flags.Load(rf); got != n {
		t.Fatalf("delivered %d of %d", got, n)
	}
}

func TestErrorMentionsCore(t *testing.T) {
	f := newFixture(t, "", 8)
	_ = f.m.Run(func(cell *machine.Cell) error {
		if cell.ID() == 0 {
			err := New(cell).Put(Transfer{To: 99, Size: 8})
			if err == nil || !strings.Contains(err.Error(), "core:") {
				t.Errorf("err = %v", err)
			}
			if !errors.Is(err, ErrBadAddress) {
				t.Errorf("err %v is not ErrBadAddress", err)
			}
		}
		return nil
	})
}

func BenchmarkPutIssue(b *testing.B) {
	// The paper's S4.1 claim: issuing a PUT costs only writing the
	// 8 command words. This measures our issue path (PushUser) alone.
	f := newFixture(b, "", 1024)
	err := f.m.Run(func(cell *machine.Cell) error {
		if cell.ID() != 0 {
			return nil
		}
		c := New(cell)
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := c.Put(Transfer{To: 1, Remote: f.segs[1].Base(), Local: f.segs[0].Base(), Size: 8}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
