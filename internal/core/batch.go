// Batched command issue: the descriptor-ring idiom on top of the
// MSC+. A CommandList collects PUT/GET entries the way a NIC driver
// builds a descriptor ring, then Commit reserves queue space once and
// rings the doorbell once (one MSC+ lock acquisition, one condition
// signal) for the whole run — so a compiler-generated burst of
// transfers pays issue overhead once, not per command.
//
// With Coalesce enabled the list additionally merges adjacent
// same-destination PUTs into single stride commands (the hand
// optimization of S5.4, applied mechanically) and collapses the
// acknowledgement traffic to one ack GET per destination per batch —
// sound because the T-net delivers each (src, dst) stream in order,
// so one trailing zero-address GET acknowledges every PUT ahead of it.
package core

import (
	"fmt"

	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

// MaxBatch bounds the staged commands of one CommandList. Exceeding
// it sets the list's sticky ErrQueueFull; the cap keeps a runaway
// append loop from hiding an unbounded buffer behind one doorbell.
const MaxBatch = 1024

// pending is one staged command plus its acknowledgement request
// (materialized as a trailing zero-address GET at Commit, so staged
// PUTs stay adjacent for coalescing).
type pending struct {
	cmd msc.Command
	ack bool
}

// CommandList is a batch of PUT/GET commands built by the program and
// issued with a single Commit. Append methods are chainable and
// validation errors are sticky: the first one is reported by Commit
// (or Err) and nothing is issued. A CommandList belongs to the
// program goroutine of the cell that built it; it is not safe for
// concurrent use.
type CommandList struct {
	comm     *Comm
	open     bool
	coalesce bool
	err      error
	entries  []pending
	// last maps a destination to its most recent staged entry — the
	// only legal merge candidate, so merging never reorders commands
	// within one (src, dst) in-order stream.
	last map[topology.CellID]int
	// out is the commit expansion buffer; storage persists across
	// commits for allocation-free steady state.
	out    []msc.Command
	merged int64
}

// Batch opens the cell's reusable CommandList. While it is open a
// nested Batch call returns a fresh independent list (the common case
// reuses one list per Comm and stays allocation-free).
func (c *Comm) Batch() *CommandList {
	b := &c.batch
	if b.open {
		b = &CommandList{}
	}
	b.comm = c
	b.open = true
	b.coalesce = false
	b.err = nil
	b.entries = b.entries[:0]
	b.merged = 0
	if b.last == nil {
		b.last = make(map[topology.CellID]int)
	} else {
		clear(b.last)
	}
	return b
}

// Coalesce enables transfer merging for this batch: adjacent
// same-destination flagless PUTs combine into single stride commands
// when their address patterns allow, and acknowledgements collapse to
// one ack GET per destination. Merging never crosses a flagged
// command or a GET to the same destination, never merges self-sends,
// and never grows a command past MaxTransfer — so memory contents and
// user-flag counts are exactly those of the unmerged batch.
func (b *CommandList) Coalesce() *CommandList {
	b.coalesce = true
	return b
}

// Err reports the list's sticky error, nil while the batch is viable.
func (b *CommandList) Err() error { return b.err }

// Len reports the staged command count (after any coalescing, before
// acknowledgement expansion).
func (b *CommandList) Len() int { return len(b.entries) }

// Merged reports how many appended transfers were absorbed into an
// earlier staged command by coalescing.
func (b *CommandList) Merged() int64 { return b.merged }

// Put stages a contiguous PUT described by t.
func (b *CommandList) Put(t Transfer) *CommandList {
	return b.PutStride(t, mem.Contiguous(t.Size), mem.Contiguous(t.Size))
}

// PutStride stages a PUT with explicit send (local) and receive
// (remote) stride patterns; t.Size is ignored.
func (b *CommandList) PutStride(t Transfer, sendPat, recvPat mem.Stride) *CommandList {
	if !b.ready() {
		return b
	}
	if err := b.comm.validate(t.To, sendPat); err != nil {
		b.err = err
		return b
	}
	if err := recvPat.Validate(); err != nil {
		b.err = fmt.Errorf("core: %w: %v", ErrBadStride, err)
		return b
	}
	if sendPat.Total() != recvPat.Total() {
		b.err = fmt.Errorf("core: put payload mismatch: send %d bytes, recv %d: %w", sendPat.Total(), recvPat.Total(), ErrBadStride)
		return b
	}
	b.stage(msc.Command{
		Op: msc.OpPut, Dst: t.To,
		RAddr: t.Remote, LAddr: t.Local,
		RStride: recvPat, LStride: sendPat,
		SendFlag: t.SendFlag, RecvFlag: t.RecvFlag,
	}, t.Ack)
	return b
}

// Get stages a contiguous GET described by t (t.Ack is ignored).
func (b *CommandList) Get(t Transfer) *CommandList {
	return b.GetStride(t, mem.Contiguous(t.Size), mem.Contiguous(t.Size))
}

// GetStride stages a GET with explicit send (remote) and receive
// (local) stride patterns; t.Size is ignored.
func (b *CommandList) GetStride(t Transfer, sendPat, recvPat mem.Stride) *CommandList {
	if !b.ready() {
		return b
	}
	if err := b.comm.validate(t.To, sendPat); err != nil {
		b.err = err
		return b
	}
	if err := recvPat.Validate(); err != nil {
		b.err = fmt.Errorf("core: %w: %v", ErrBadStride, err)
		return b
	}
	if sendPat.Total() != recvPat.Total() {
		b.err = fmt.Errorf("core: get payload mismatch: send %d bytes, recv %d: %w", sendPat.Total(), recvPat.Total(), ErrBadStride)
		return b
	}
	b.stage(msc.Command{
		Op: msc.OpGet, Dst: t.To,
		RAddr: t.Remote, LAddr: t.Local,
		RStride: sendPat, LStride: recvPat,
		SendFlag: t.SendFlag, RecvFlag: t.RecvFlag,
	}, false)
	return b
}

func (b *CommandList) ready() bool {
	if b.err != nil {
		return false
	}
	if !b.open {
		b.err = fmt.Errorf("core: append to a CommandList without an open Batch")
		return false
	}
	return true
}

// stage appends a validated command, first offering it to the latest
// same-destination staged command for merging when coalescing is on.
func (b *CommandList) stage(cmd msc.Command, ack bool) {
	if b.coalesce && cmd.Op == msc.OpPut && cmd.Dst != b.comm.cell.ID() {
		if i, ok := b.last[cmd.Dst]; ok {
			if e := &b.entries[i]; e.cmd.Op == msc.OpPut && mergePut(&e.cmd, &cmd) {
				e.ack = e.ack || ack
				b.merged++
				return
			}
		}
	}
	if len(b.entries) >= MaxBatch {
		b.err = fmt.Errorf("core: CommandList exceeds %d staged commands: %w", MaxBatch, ErrQueueFull)
		return
	}
	b.entries = append(b.entries, pending{cmd: cmd, ack: ack})
	if b.coalesce {
		// Every staged op — including a GET or a flagged PUT — becomes
		// the destination's latest entry, so it acts as a merge barrier
		// for anything that must not be reordered past it.
		b.last[cmd.Dst] = len(b.entries) - 1
	}
}

// Commit issues the whole batch: expand acknowledgements, record the
// trace, and push every command into the MSC+ user queue under one
// doorbell. The list closes and its buffers are retained for the next
// Batch. On a sticky error nothing is issued and the error returns.
func (b *CommandList) Commit() error {
	if !b.open {
		if b.err != nil {
			return b.err
		}
		return fmt.Errorf("core: Commit on a CommandList without an open Batch")
	}
	b.open = false
	if b.err != nil {
		err := b.err
		b.entries = b.entries[:0]
		return err
	}
	c := b.comm
	out := b.out[:0]
	acks := 0
	if b.coalesce {
		for i := range b.entries {
			out = append(out, b.entries[i].cmd)
		}
		// One trailing ack GET per acknowledged destination: the
		// in-order (src, dst) stream means the single reply confirms
		// every PUT queued ahead of it.
		clear(b.last)
		for i := range b.entries {
			e := &b.entries[i]
			if e.ack {
				if _, seen := b.last[e.cmd.Dst]; !seen {
					b.last[e.cmd.Dst] = i
					out = append(out, ackCommand(e.cmd.Dst))
					acks++
				}
			}
		}
	} else {
		for i := range b.entries {
			e := &b.entries[i]
			out = append(out, e.cmd)
			if e.ack {
				out = append(out, ackCommand(e.cmd.Dst))
				acks++
			}
		}
	}
	if rec := c.cell.Recorder(); rec != nil {
		b.record(rec)
	}
	c.acks += int64(acks)
	if len(out) > 0 {
		c.cell.PushUserBatch(out)
	}
	b.out = out
	b.entries = b.entries[:0]
	return nil
}

// record writes the batch's trace events at issue time (Commit), one
// per staged command, mirroring what the machine actually executes.
func (b *CommandList) record(rec *trace.Recorder) {
	for i := range b.entries {
		e := &b.entries[i]
		items := e.cmd.LStride.Count
		if e.cmd.RStride.Count > items {
			items = e.cmd.RStride.Count
		}
		switch e.cmd.Op {
		case msc.OpPut:
			rec.Put(e.cmd.Dst, e.cmd.LStride.Total(), items,
				trace.FlagID(e.cmd.SendFlag), trace.FlagID(e.cmd.RecvFlag), e.ack, b.comm.rts)
		case msc.OpGet:
			rec.Get(e.cmd.Dst, e.cmd.RStride.Total(), items,
				trace.FlagID(e.cmd.SendFlag), trace.FlagID(e.cmd.RecvFlag), b.comm.rts)
		}
	}
}

// mergePut tries to absorb next into prev, growing prev's stride
// patterns. Only flagless, payload-bearing PUTs merge, and only when
// both the local and the remote byte streams of next continue prev's
// in append order (or interleave item-by-item on both sides at once),
// so the merged DMA writes exactly the bytes the two commands would
// have. Reports whether the merge happened.
func mergePut(prev, next *msc.Command) bool {
	if prev.SendFlag != mc.NoFlag || prev.RecvFlag != mc.NoFlag ||
		next.SendFlag != mc.NoFlag || next.RecvFlag != mc.NoFlag {
		return false
	}
	if prev.RAddr == 0 || next.RAddr == 0 || prev.LAddr == 0 || next.LAddr == 0 {
		return false // pure flag messages carry no coalescible payload
	}
	if prev.LStride.Total()+next.LStride.Total() > MaxTransfer {
		return false
	}
	if l, ok := sideAppend(prev.LAddr, prev.LStride, next.LAddr, next.LStride); ok {
		if r, ok := sideAppend(prev.RAddr, prev.RStride, next.RAddr, next.RStride); ok {
			prev.LStride, prev.RStride = l, r
			return true
		}
	}
	// Interleaving reorders the byte stream per item, so the local and
	// remote chunk boundaries must coincide: both sides of each command
	// need the same item size and count for the merged streams to stay
	// aligned.
	if prev.LStride.ItemSize == prev.RStride.ItemSize && prev.LStride.Count == prev.RStride.Count &&
		next.LStride.ItemSize == next.RStride.ItemSize && next.LStride.Count == next.RStride.Count {
		if l, ok := sideInterleave(prev.LAddr, prev.LStride, next.LAddr, next.LStride); ok {
			if r, ok := sideInterleave(prev.RAddr, prev.RStride, next.RAddr, next.RStride); ok {
				prev.LStride, prev.RStride = l, r
				return true
			}
		}
	}
	return false
}

// sideAppend reports whether pattern pn at an continues pattern pp at
// ap in byte-stream order on one side of a transfer, returning the
// combined pattern: exact contiguous extension, two equal pieces at a
// constant gap forming a new stride, or more items appended to an
// existing stride.
func sideAppend(ap mem.Addr, pp mem.Stride, an mem.Addr, pn mem.Stride) (mem.Stride, bool) {
	if pp.Count == 1 && pn.Count == 1 && an == ap+mem.Addr(pp.ItemSize) {
		return mem.Stride{ItemSize: pp.ItemSize + pn.ItemSize, Count: 1}, true
	}
	if pn.ItemSize != pp.ItemSize {
		return mem.Stride{}, false
	}
	s := pp.ItemSize
	if pp.Count == 1 {
		if pn.Count != 1 {
			return mem.Stride{}, false
		}
		gap := int64(an) - int64(ap) - s
		if gap < 0 {
			return mem.Stride{}, false
		}
		return mem.Stride{ItemSize: s, Count: 2, Skip: gap}, true
	}
	step := s + pp.Skip
	if int64(an) != int64(ap)+pp.Count*step {
		return mem.Stride{}, false
	}
	if pn.Count > 1 && pn.Skip != pp.Skip {
		return mem.Stride{}, false
	}
	return mem.Stride{ItemSize: s, Count: pp.Count + pn.Count, Skip: pp.Skip}, true
}

// sideInterleave reports whether pn at an fills the gaps of pp at ap
// item-by-item — adjacent columns of a row-major block — returning
// the widened stride. Callers must apply it to both sides of a
// transfer or not at all: it reorders the byte stream per item.
func sideInterleave(ap mem.Addr, pp mem.Stride, an mem.Addr, pn mem.Stride) (mem.Stride, bool) {
	if pp.Count < 2 || pn.Count != pp.Count {
		return mem.Stride{}, false
	}
	if an != ap+mem.Addr(pp.ItemSize) {
		return mem.Stride{}, false
	}
	if pn.ItemSize+pn.Skip != pp.ItemSize+pp.Skip {
		return mem.Stride{}, false
	}
	skip := pp.Skip - pn.ItemSize
	if skip < 0 {
		return mem.Stride{}, false
	}
	return mem.Stride{ItemSize: pp.ItemSize + pn.ItemSize, Count: pp.Count, Skip: skip}, true
}
