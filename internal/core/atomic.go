package core

// Remote atomics on the PUT/GET interface: the MC's S4.1
// fetch-and-increment generalized into a word-atomic suite. Fetching
// forms (FetchAdd, CompareAndSwap, Swap) block like ReadRemote;
// non-fetching updates (AtomicAdd, AtomicMin, AtomicMax) are
// fire-and-forget like a remote store, fenced with FenceAtomics.
// Under Config.Combining, same-address combinable operations merge in
// the T-net on their way to the owner — the results are identical,
// only the message count drops.

import (
	"fmt"

	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/msc"
	"ap1000plus/internal/topology"
)

func (c *Comm) validateAtomic(dst topology.CellID) error {
	if !c.cell.Machine().Torus().Valid(dst) {
		return fmt.Errorf("core: invalid destination cell %d: %w", dst, ErrBadAddress)
	}
	return nil
}

// FetchAdd atomically adds delta to the 8-byte word at raddr on dst
// and returns the word's previous value. Blocking.
func (c *Comm) FetchAdd(dst topology.CellID, raddr mem.Addr, delta int64) (int64, error) {
	if err := c.validateAtomic(dst); err != nil {
		return 0, err
	}
	return c.cell.FetchAdd(dst, raddr, delta)
}

// CompareAndSwap atomically stores newVal into the word at raddr on
// dst iff it equals oldVal, returning the previous value either way.
// Blocking.
func (c *Comm) CompareAndSwap(dst topology.CellID, raddr mem.Addr, oldVal, newVal int64) (int64, error) {
	if err := c.validateAtomic(dst); err != nil {
		return 0, err
	}
	return c.cell.CompareAndSwap(dst, raddr, oldVal, newVal)
}

// Swap atomically stores v into the word at raddr on dst and returns
// the previous value. Blocking.
func (c *Comm) Swap(dst topology.CellID, raddr mem.Addr, v int64) (int64, error) {
	if err := c.validateAtomic(dst); err != nil {
		return 0, err
	}
	return c.cell.Swap(dst, raddr, v)
}

// AtomicAdd atomically adds delta to the word at raddr on dst,
// non-blocking; FenceAtomics awaits the acknowledgement.
func (c *Comm) AtomicAdd(dst topology.CellID, raddr mem.Addr, delta int64) error {
	if err := c.validateAtomic(dst); err != nil {
		return err
	}
	c.cell.AtomicAdd(dst, raddr, delta)
	return nil
}

// AtomicMin atomically lowers the word at raddr on dst to v if v is
// smaller (signed), non-blocking.
func (c *Comm) AtomicMin(dst topology.CellID, raddr mem.Addr, v int64) error {
	if err := c.validateAtomic(dst); err != nil {
		return err
	}
	c.cell.AtomicMin(dst, raddr, v)
	return nil
}

// AtomicMax atomically raises the word at raddr on dst to v if v is
// larger (signed), non-blocking.
func (c *Comm) AtomicMax(dst topology.CellID, raddr mem.Addr, v int64) error {
	if err := c.validateAtomic(dst); err != nil {
		return err
	}
	c.cell.AtomicMax(dst, raddr, v)
	return nil
}

// FenceAtomics blocks until every non-fetching atomic issued by this
// cell — singly or via a CommandList — has been acknowledged.
func (c *Comm) FenceAtomics() { c.cell.FenceAtomics() }

// AtomicAdd stages a non-fetching atomic add in the batch. Staged
// atomics ride the same in-order (src, dst) stream as the batch's
// PUTs and act as merge barriers, so coalescing never reorders a
// transfer past an atomic to the same destination. Fetching atomics
// cannot be staged: they block for a result, which a single-doorbell
// batch cannot deliver.
func (b *CommandList) AtomicAdd(dst topology.CellID, raddr mem.Addr, delta int64) *CommandList {
	return b.stageAtomic(mc.AtomicAdd, dst, raddr, delta)
}

// AtomicMin stages a non-fetching atomic min in the batch.
func (b *CommandList) AtomicMin(dst topology.CellID, raddr mem.Addr, v int64) *CommandList {
	return b.stageAtomic(mc.AtomicMin, dst, raddr, v)
}

// AtomicMax stages a non-fetching atomic max in the batch.
func (b *CommandList) AtomicMax(dst topology.CellID, raddr mem.Addr, v int64) *CommandList {
	return b.stageAtomic(mc.AtomicMax, dst, raddr, v)
}

func (b *CommandList) stageAtomic(op mc.AtomicOp, dst topology.CellID, raddr mem.Addr, operand int64) *CommandList {
	if !b.ready() {
		return b
	}
	if err := b.comm.validateAtomic(dst); err != nil {
		b.err = err
		return b
	}
	b.stage(msc.Command{
		Op: msc.OpAtomic, Dst: dst,
		RAddr: raddr, AOp: op, AVal: operand,
	}, false)
	return b
}
