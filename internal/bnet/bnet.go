// Package bnet models the AP1000+ broadcast network: a single shared
// 50 MB/s medium connecting all cells and the host, used "for
// broadcast communication and data distribution and collection".
//
// The B-net is a bus: one sender at a time. The functional model
// serializes broadcasts with a mutex (preserving the bus property
// that every cell observes broadcasts in the same global order) and
// delivers to each cell's handler.
package bnet

import (
	"fmt"
	"sync"

	"ap1000plus/internal/fault"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
)

// Bandwidth is the B-net bandwidth in bytes/second (Figure 5: 50MB/s).
const Bandwidth = 50 << 20

// Message is a broadcast or distribution unit.
type Message struct {
	Src topology.CellID // HostID for host-originated distribution
	// Payload carries the data.
	Payload *mem.Payload
	// Tag lets receivers demultiplex broadcast streams.
	Tag int64
}

// Handler consumes a broadcast at one cell.
type Handler func(Message)

// Stats counts B-net traffic.
type Stats struct {
	Broadcasts int64
	Scatters   int64
	Gathers    int64
	Bytes      int64
	// Retries counts bus-level redeliveries under a fault plan (a
	// snooping BIF that missed or corrupted a broadcast re-reads it
	// from the medium); Failed counts per-cell deliveries abandoned
	// after the retry budget.
	Retries int64
	Failed  int64
}

// Network is the broadcast bus.
type Network struct {
	cells    int
	mu       sync.Mutex
	handlers []Handler
	stats    Stats
	// Fault layer: the bus is a single globally-ordered medium, so
	// only drop and corrupt apply (a duplicate or reordered snoop is
	// structurally impossible); both are retried at bus level.
	inj      *fault.Injector
	class    int
	attempts int
	// partOf, when non-nil, maps each cell to its machine partition: a
	// cell-originated broadcast is snooped only inside the sender's
	// partition (the bus is segmented per partition under multi-user
	// operation). Host-originated traffic still reaches every cell.
	partOf []int32
}

// New builds a B-net for n cells.
func New(cells int) *Network {
	if cells <= 0 {
		panic("bnet: non-positive cell count")
	}
	return &Network{cells: cells, handlers: make([]Handler, cells)}
}

// Attach registers cell id's B-net interface (the BIF of Figure 5).
func (n *Network) Attach(id topology.CellID, h Handler) {
	if int(id) < 0 || int(id) >= n.cells {
		panic(fmt.Sprintf("bnet: attach to invalid cell %d", id))
	}
	if h == nil {
		panic("bnet: nil handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.handlers[id] != nil {
		panic(fmt.Sprintf("bnet: cell %d already attached", id))
	}
	n.handlers[id] = h
}

// SetFault installs the fault injector for the bus. class is the
// injector's class ID for broadcast traffic, attempts the per-cell
// delivery budget. Install before traffic flows.
func (n *Network) SetFault(inj *fault.Injector, class, attempts int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.inj = inj
	n.class = class
	n.attempts = attempts
}

// SetPartitions installs the cell→partition map; nil restores the
// single-segment bus. Install before traffic flows.
func (n *Network) SetPartitions(of []int32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if of != nil && len(of) != n.cells {
		panic(fmt.Sprintf("bnet: partition map covers %d cells of %d", len(of), n.cells))
	}
	n.partOf = of
}

// Broadcast delivers m to every cell of the sender's partition
// (including the sender, matching the bus: every BIF on the segment
// snoops the medium); without a partition map, to every cell.
// Broadcasts are globally ordered — the bus carries one message at a
// time. It returns the number of cells the message could NOT be
// delivered to within the retry budget: always 0 without a fault plan.
func (n *Network) Broadcast(m Message) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Broadcasts++
	n.stats.Bytes += m.Payload.Size()
	src := int(m.Src)
	scoped := n.partOf != nil && src >= 0 && src < len(n.partOf)
	failed := 0
	for id, h := range n.handlers {
		if scoped && n.partOf[id] != n.partOf[src] {
			continue
		}
		if h == nil {
			panic(fmt.Sprintf("bnet: cell %d has no handler", id))
		}
		if n.inj == nil {
			h(m)
			continue
		}
		if !n.deliverFaulty(h, m, id) {
			failed++
			n.stats.Failed++
		}
	}
	return failed
}

// deliverFaulty attempts one cell's snoop of a broadcast under the
// fault plan, retrying dropped or corrupted snoops at bus level up to
// the budget. Duplicate and reorder fates cannot occur on the ordered
// single-medium bus and deliver normally.
func (n *Network) deliverFaulty(h Handler, m Message, dst int) bool {
	for attempt := 1; ; attempt++ {
		fate := n.inj.Decide(int(m.Src), dst, n.class)
		if fate.Kind != fault.KindDrop && fate.Kind != fault.KindCorrupt {
			h(m)
			return true
		}
		if attempt >= n.attempts {
			return false
		}
		n.stats.Retries++
	}
}

// Scatter delivers one message per cell (data distribution). msgs
// must have exactly one entry per cell, indexed by cell ID.
func (n *Network) Scatter(src topology.CellID, msgs []Message) {
	if len(msgs) != n.cells {
		panic(fmt.Sprintf("bnet: scatter with %d messages for %d cells", len(msgs), n.cells))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Scatters++
	for id, m := range msgs {
		m.Src = src
		n.stats.Bytes += m.Payload.Size()
		n.handlers[id](m)
	}
}

// Gather collects one payload from each cell via the supplied
// per-cell producer (data collection toward the host or a root cell).
// The bus serializes the collection.
func (n *Network) Gather(produce func(id topology.CellID) *mem.Payload) []*mem.Payload {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Gathers++
	out := make([]*mem.Payload, n.cells)
	for id := 0; id < n.cells; id++ {
		p := produce(topology.CellID(id))
		n.stats.Bytes += p.Size()
		out[id] = p
	}
	return out
}

// Stats snapshots traffic counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}
