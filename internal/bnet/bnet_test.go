package bnet

import (
	"testing"

	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
)

func payload(t *testing.T, vals ...float64) *mem.Payload {
	t.Helper()
	sp, _ := mem.NewSpace(1 << 16)
	seg, data, _ := sp.AllocFloat64("p", len(vals))
	copy(data, vals)
	//apvet:ignore rawmem unit test of the network layer itself; no machine exists to issue a PUT
	p, err := mem.CapturePayload(sp, seg.Base(), mem.Contiguous(int64(len(vals))*8))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBroadcastReachesAll(t *testing.T) {
	n := New(4)
	got := make([]float64, 4)
	for id := 0; id < 4; id++ {
		id := id
		n.Attach(topology.CellID(id), func(m Message) {
			vals, ok := m.Payload.Float64s()
			if !ok {
				t.Errorf("cell %d: payload not float64", id)
				return
			}
			got[id] = vals[0]
		})
	}
	n.Broadcast(Message{Src: 2, Payload: payload(t, 42.0)})
	for id, v := range got {
		if v != 42.0 {
			t.Fatalf("cell %d got %v", id, v)
		}
	}
	if s := n.Stats(); s.Broadcasts != 1 || s.Bytes != 8 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestScatter(t *testing.T) {
	n := New(4)
	got := make([]float64, 4)
	for id := 0; id < 4; id++ {
		id := id
		n.Attach(topology.CellID(id), func(m Message) {
			vals, _ := m.Payload.Float64s()
			got[id] = vals[0]
			if m.Src != topology.HostID {
				t.Errorf("src = %d", m.Src)
			}
		})
	}
	msgs := make([]Message, 4)
	for i := range msgs {
		msgs[i] = Message{Payload: payload(t, float64(i*10))}
	}
	n.Scatter(topology.HostID, msgs)
	for id, v := range got {
		if v != float64(id*10) {
			t.Fatalf("cell %d got %v", id, v)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("scatter with wrong count should panic")
			}
		}()
		n.Scatter(topology.HostID, msgs[:2])
	}()
}

func TestGather(t *testing.T) {
	n := New(4)
	for id := 0; id < 4; id++ {
		n.Attach(topology.CellID(id), func(Message) {})
	}
	out := n.Gather(func(id topology.CellID) *mem.Payload {
		return payload(t, float64(id))
	})
	if len(out) != 4 {
		t.Fatalf("gathered %d", len(out))
	}
	for id, p := range out {
		vals, _ := p.Float64s()
		if vals[0] != float64(id) {
			t.Fatalf("cell %d contributed %v", id, vals[0])
		}
	}
	if s := n.Stats(); s.Gathers != 1 || s.Bytes != 32 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAttachValidation(t *testing.T) {
	n := New(2)
	n.Attach(0, func(Message) {})
	for _, f := range []func(){
		func() { n.Attach(0, func(Message) {}) },
		func() { n.Attach(5, func(Message) {}) },
		func() { n.Attach(1, nil) },
		func() { New(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
