// Package pgas layers a UPC/SHMEM-flavored partitioned global address
// space over the AP1000+ PUT/GET interface: a symmetric heap of
// round-robin-distributed shared arrays (libgetput's model — element i
// of an array has affinity to cell i mod P, in local slot i div P),
// fine-grained naive Get/Put/atomic operations built directly on the
// MSC+ paths, and an exstack-style aggregation mode that buffers
// fine-grained operations per destination and exchanges them in bulk
// rounds, the traffic shape fine-grained PGAS codes need to go fast.
package pgas

import "fmt"

// Layout is the round-robin distribution of an n-element array over p
// cells: element i lives on cell i mod p at local slot i div p. The
// cyclic map is the UPC default layout — consecutive global indices
// land on consecutive cells, so an index stream with no locality
// spreads evenly by construction.
type Layout struct {
	// N is the global element count.
	N int64
	// P is the number of cells.
	P int64
}

// Owner returns the cell holding global index i.
func (l Layout) Owner(i int64) int64 { return i % l.P }

// Slot returns the owner-local slot of global index i.
func (l Layout) Slot(i int64) int64 { return i / l.P }

// Index is the inverse mapping: the global index stored at (owner,
// slot).
func (l Layout) Index(owner, slot int64) int64 { return slot*l.P + owner }

// SlotsPerCell is the symmetric per-cell allocation, ceil(N/P): every
// cell reserves the same number of slots so the heap stays symmetric
// even when P does not divide N.
func (l Layout) SlotsPerCell() int64 { return (l.N + l.P - 1) / l.P }

// SlotsOn is the number of slots actually backed by elements on one
// cell: the first N mod P cells hold one element more than the rest.
func (l Layout) SlotsOn(owner int64) int64 {
	q, r := l.N/l.P, l.N%l.P
	if owner < r {
		return q + 1
	}
	return q
}

// Check validates a global index against the layout bounds.
func (l Layout) Check(i int64) error {
	if i < 0 || i >= l.N {
		return fmt.Errorf("pgas: index %d out of range [0,%d)", i, l.N)
	}
	return nil
}
