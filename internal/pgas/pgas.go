package pgas

import (
	"encoding/binary"
	"fmt"

	"ap1000plus/internal/barrier"
	"ap1000plus/internal/core"
	"ap1000plus/internal/machine"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/topology"
	"ap1000plus/internal/trace"
)

const (
	// stageSlots is the depth of the per-PE staging ring for
	// fine-grained PutInt64: a put captures its value from a ring slot,
	// and the slot recycles once the send flag shows the DMA read it
	// (S3.1's "reuse the source area as soon as the send flag rises").
	stageSlots = 64
	// bulkWords sizes the bulk staging buffer used by GetMem/PutMem
	// chunking and by GetInt64 as the landing area for the reply.
	bulkWords = 512
)

// maxArrays bounds the per-heap array count so an array id packs into
// the aggregation packet header.
const maxArrays = 1 << 12

// Heap is a symmetric heap of shared arrays: every Alloc reserves the
// same number of bytes at the same point in every cell's allocation
// order, so an array is named by one id machine-wide. Allocate before
// Machine.Run, on the host.
type Heap struct {
	m      *machine.Machine
	np     int
	arrays []*Shared
	pes    []*PE
	// scratch is a P-word shared array backing the exact integer
	// reductions and scans.
	scratch *Shared
}

// NewHeap builds the symmetric heap on a machine. Call once, before
// constructing PEs.
func NewHeap(m *machine.Machine) (*Heap, error) {
	h := &Heap{m: m, np: m.Cells(), pes: make([]*PE, m.Cells())}
	sc, err := h.Alloc("scratch", int64(m.Cells()))
	if err != nil {
		return nil, err
	}
	h.scratch = sc
	return h, nil
}

// Machine returns the machine the heap lives on.
func (h *Heap) Machine() *machine.Machine { return h.m }

// NP returns the number of cells.
func (h *Heap) NP() int { return h.np }

// Alloc reserves an n-element int64 shared array, round-robin
// distributed: ceil(n/P) slots on every cell.
func (h *Heap) Alloc(name string, n int64) (*Shared, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pgas: Alloc %q: size %d", name, n)
	}
	if len(h.arrays) >= maxArrays {
		return nil, fmt.Errorf("pgas: Alloc %q: heap full (%d arrays)", name, maxArrays)
	}
	s := &Shared{
		h: h, id: len(h.arrays), name: name,
		lay:   Layout{N: n, P: int64(h.np)},
		segs:  make([]*mem.Segment, h.np),
		bytes: make([][]byte, h.np),
	}
	per := s.lay.SlotsPerCell() * 8
	for id := 0; id < h.np; id++ {
		seg, b, err := h.m.Cell(topology.CellID(id)).AllocBytes("pgas."+name, per)
		if err != nil {
			return nil, fmt.Errorf("pgas: Alloc %q: cell %d: %w", name, id, err)
		}
		s.segs[id], s.bytes[id] = seg, b
	}
	h.arrays = append(h.arrays, s)
	return s, nil
}

// PE returns the per-cell processing element for rank, once built.
func (h *Heap) PE(rank int) *PE { return h.pes[rank] }

// Shared is one round-robin-distributed array on the symmetric heap.
type Shared struct {
	h     *Heap
	id    int
	name  string
	lay   Layout
	segs  []*mem.Segment
	bytes [][]byte
}

// Name returns the array's heap name.
func (s *Shared) Name() string { return s.name }

// Len returns the global element count.
func (s *Shared) Len() int64 { return s.lay.N }

// Layout exposes the round-robin index mapping.
func (s *Shared) Layout() Layout { return s.lay }

// addrOf translates a global index to its owner and owner-local
// address.
func (s *Shared) addrOf(i int64) (topology.CellID, mem.Addr) {
	return topology.CellID(s.lay.Owner(i)), s.segs[s.lay.Owner(i)].Base() + mem.Addr(s.lay.Slot(i)*8)
}

// Word reads element i host-side (outside Machine.Run, or after a
// barrier has quiesced the array).
func (s *Shared) Word(i int64) int64 {
	owner, slot := s.lay.Owner(i), s.lay.Slot(i)
	return int64(binary.LittleEndian.Uint64(s.bytes[owner][slot*8:]))
}

// SetWord writes element i host-side (initialization before Run).
func (s *Shared) SetWord(i, v int64) {
	owner, slot := s.lay.Owner(i), s.lay.Slot(i)
	binary.LittleEndian.PutUint64(s.bytes[owner][slot*8:], uint64(v))
}

// Words copies the whole array out host-side, in global index order.
func (s *Shared) Words() []int64 {
	out := make([]int64, s.lay.N)
	for i := range out {
		out[i] = s.Word(int64(i))
	}
	return out
}

// PE is one cell's handle on the heap: the fine-grained ("naive")
// PUT/GET and remote-atomic operations, barriers and reductions.
// Build one per cell, on every cell, before Machine.Run; use it only
// from that cell's SPMD goroutine.
type PE struct {
	h    *Heap
	cell *machine.Cell
	comm *core.Comm
	sync *barrier.Sync
	me   int
	np   int

	stageSeg  *mem.Segment
	stageB    []byte
	stageFlag mc.FlagID
	puts      int64

	bulkSeg  *mem.Segment
	bulkB    []byte
	bulkFlag mc.FlagID
	bulkPuts int64
}

// NewPE builds rank cell's processing element. The ring and bulk
// staging segments and flags are allocated here, so construct PEs in
// the same order on every cell (the natural loop over ranks) to keep
// the heap symmetric.
func NewPE(h *Heap, cell *machine.Cell) (*PE, error) {
	sync, err := barrier.New(cell, nil)
	if err != nil {
		return nil, fmt.Errorf("pgas: NewPE cell %d: %w", cell.ID(), err)
	}
	pe := &PE{
		h: h, cell: cell, comm: core.New(cell), sync: sync,
		me: int(cell.ID()), np: cell.N(),
	}
	pe.stageSeg, pe.stageB, err = cell.AllocBytes("pgas.stage", stageSlots*8)
	if err != nil {
		return nil, fmt.Errorf("pgas: NewPE cell %d: %w", cell.ID(), err)
	}
	pe.bulkSeg, pe.bulkB, err = cell.AllocBytes("pgas.bulk", bulkWords*8)
	if err != nil {
		return nil, fmt.Errorf("pgas: NewPE cell %d: %w", cell.ID(), err)
	}
	pe.stageFlag = cell.Flags.Alloc()
	pe.bulkFlag = cell.Flags.Alloc()
	h.pes[pe.me] = pe
	return pe, nil
}

// Rank returns this PE's cell id.
func (pe *PE) Rank() int { return pe.me }

// NP returns the number of cells.
func (pe *PE) NP() int { return pe.np }

// Comm exposes the underlying PUT/GET interface.
func (pe *PE) Comm() *core.Comm { return pe.comm }

// localWord reads a word of my own partition, annotated for the
// sanitizer.
func (pe *PE) localWord(s *Shared, slot int64) int64 {
	pe.cell.SanRead(s.segs[pe.me].Base()+mem.Addr(slot*8), mem.Contiguous(8), "pgas local load")
	return int64(binary.LittleEndian.Uint64(s.bytes[pe.me][slot*8:]))
}

// setLocalWord writes a word of my own partition, annotated for the
// sanitizer.
func (pe *PE) setLocalWord(s *Shared, slot, v int64) {
	pe.cell.SanWrite(s.segs[pe.me].Base()+mem.Addr(slot*8), mem.Contiguous(8), "pgas local store")
	binary.LittleEndian.PutUint64(s.bytes[pe.me][slot*8:], uint64(v))
}

// PutInt64 stores v into element i: an acknowledged fine-grained PUT
// through the staging ring. The put is asynchronous — it is globally
// visible only after Fence (or Barrier). Same-element puts from two
// cells in one phase race unless the values agree.
func (pe *PE) PutInt64(s *Shared, i, v int64) error {
	if err := s.lay.Check(i); err != nil {
		return err
	}
	owner, raddr := s.addrOf(i)
	if int(owner) == pe.me {
		pe.setLocalWord(s, s.lay.Slot(i), v)
		return nil
	}
	// Recycle the oldest ring slot once its send DMA has read it.
	if pe.puts >= stageSlots {
		pe.comm.WaitFlag(pe.stageFlag, pe.puts-stageSlots+1)
	}
	off := (pe.puts % stageSlots) * 8
	pe.cell.SanWrite(pe.stageSeg.Base()+mem.Addr(off), mem.Contiguous(8), "pgas put stage")
	binary.LittleEndian.PutUint64(pe.stageB[off:], uint64(v))
	err := pe.comm.Put(core.Transfer{
		To: owner, Remote: raddr, Local: pe.stageSeg.Base() + mem.Addr(off),
		Size: 8, SendFlag: pe.stageFlag, Ack: true,
	})
	if err != nil {
		return err
	}
	pe.puts++
	return nil
}

// GetInt64 loads element i: a blocking fine-grained GET.
func (pe *PE) GetInt64(s *Shared, i int64) (int64, error) {
	if err := s.lay.Check(i); err != nil {
		return 0, err
	}
	owner, raddr := s.addrOf(i)
	if int(owner) == pe.me {
		return pe.localWord(s, s.lay.Slot(i)), nil
	}
	if err := pe.comm.ReadRemote(owner, raddr, pe.bulkSeg.Base(), 8); err != nil {
		return 0, err
	}
	pe.cell.SanRead(pe.bulkSeg.Base(), mem.Contiguous(8), "pgas get read")
	return int64(binary.LittleEndian.Uint64(pe.bulkB)), nil
}

// PutMem stores len(src) words into the owner-local run starting at
// element i: slots Slot(i), Slot(i)+1, ... of Owner(i), which are
// global elements i, i+P, i+2P, ... (libgetput's lgp_memput). Each
// chunk is synchronous on the send side and acknowledged; globally
// visible after Fence.
func (pe *PE) PutMem(s *Shared, i int64, src []int64) error {
	if err := pe.checkRun(s, i, len(src)); err != nil {
		return err
	}
	owner, raddr := s.addrOf(i)
	if int(owner) == pe.me {
		slot := s.lay.Slot(i)
		for k, v := range src {
			pe.setLocalWord(s, slot+int64(k), v)
		}
		return nil
	}
	for done := 0; done < len(src); {
		n := len(src) - done
		if n > bulkWords {
			n = bulkWords
		}
		pe.cell.SanWrite(pe.bulkSeg.Base(), mem.Contiguous(int64(n*8)), "pgas memput stage")
		for k := 0; k < n; k++ {
			binary.LittleEndian.PutUint64(pe.bulkB[k*8:], uint64(src[done+k]))
		}
		err := pe.comm.Put(core.Transfer{
			To: owner, Remote: raddr + mem.Addr(done*8), Local: pe.bulkSeg.Base(),
			Size: int64(n * 8), SendFlag: pe.bulkFlag, Ack: true,
		})
		if err != nil {
			return err
		}
		pe.bulkPuts++
		// The bulk buffer recycles for the next chunk as soon as the
		// send DMA has captured this one.
		pe.comm.WaitFlag(pe.bulkFlag, pe.bulkPuts)
		done += n
	}
	return nil
}

// GetMem loads len(dst) words from the owner-local run starting at
// element i (the read twin of PutMem). Blocking.
func (pe *PE) GetMem(s *Shared, i int64, dst []int64) error {
	if err := pe.checkRun(s, i, len(dst)); err != nil {
		return err
	}
	owner, raddr := s.addrOf(i)
	if int(owner) == pe.me {
		slot := s.lay.Slot(i)
		for k := range dst {
			dst[k] = pe.localWord(s, slot+int64(k))
		}
		return nil
	}
	for done := 0; done < len(dst); {
		n := len(dst) - done
		if n > bulkWords {
			n = bulkWords
		}
		err := pe.comm.ReadRemote(owner, raddr+mem.Addr(done*8), pe.bulkSeg.Base(), int64(n*8))
		if err != nil {
			return err
		}
		pe.cell.SanRead(pe.bulkSeg.Base(), mem.Contiguous(int64(n*8)), "pgas memget read")
		for k := 0; k < n; k++ {
			dst[done+k] = int64(binary.LittleEndian.Uint64(pe.bulkB[k*8:]))
		}
		done += n
	}
	return nil
}

// checkRun validates an owner-local run of n slots starting at i.
func (pe *PE) checkRun(s *Shared, i int64, n int) error {
	if err := s.lay.Check(i); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	last := s.lay.Slot(i) + int64(n) - 1
	if last >= s.lay.SlotsOn(s.lay.Owner(i)) {
		return fmt.Errorf("pgas: %s: run of %d slots from index %d overruns cell %d's partition",
			s.name, n, i, s.lay.Owner(i))
	}
	return nil
}

// ReadAll gathers the whole array into dst, in global index order:
// one GetMem per owner run. Blocking; callers typically barrier
// first.
func (pe *PE) ReadAll(s *Shared, dst []int64) error {
	if int64(len(dst)) != s.lay.N {
		return fmt.Errorf("pgas: ReadAll %s: dst holds %d of %d elements", s.name, len(dst), s.lay.N)
	}
	tmp := make([]int64, s.lay.SlotsPerCell())
	for owner := int64(0); owner < int64(s.lay.P); owner++ {
		n := s.lay.SlotsOn(owner)
		if n == 0 {
			continue
		}
		if err := pe.GetMem(s, owner, tmp[:n]); err != nil {
			return err
		}
		for k := int64(0); k < n; k++ {
			dst[s.lay.Index(owner, k)] = tmp[k]
		}
	}
	return nil
}

// FetchAdd atomically adds delta to element i and returns the
// previous value. Blocking (the MC executes the RMW at the owner and
// replies).
func (pe *PE) FetchAdd(s *Shared, i, delta int64) (int64, error) {
	if err := s.lay.Check(i); err != nil {
		return 0, err
	}
	owner, raddr := s.addrOf(i)
	return pe.comm.FetchAdd(owner, raddr, delta)
}

// CompareAndSwap atomically stores newVal into element i iff it holds
// oldVal, returning the previous value. Blocking.
func (pe *PE) CompareAndSwap(s *Shared, i, oldVal, newVal int64) (int64, error) {
	if err := s.lay.Check(i); err != nil {
		return 0, err
	}
	owner, raddr := s.addrOf(i)
	return pe.comm.CompareAndSwap(owner, raddr, oldVal, newVal)
}

// Swap atomically stores v into element i, returning the previous
// value. Blocking.
func (pe *PE) Swap(s *Shared, i, v int64) (int64, error) {
	if err := s.lay.Check(i); err != nil {
		return 0, err
	}
	owner, raddr := s.addrOf(i)
	return pe.comm.Swap(owner, raddr, v)
}

// AtomicAdd atomically adds delta to element i, fire-and-forget;
// fenced by Fence/Barrier.
func (pe *PE) AtomicAdd(s *Shared, i, delta int64) error {
	if err := s.lay.Check(i); err != nil {
		return err
	}
	owner, raddr := s.addrOf(i)
	return pe.comm.AtomicAdd(owner, raddr, delta)
}

// AtomicMin atomically lowers element i to v if smaller (signed),
// fire-and-forget; fenced by Fence/Barrier.
func (pe *PE) AtomicMin(s *Shared, i, v int64) error {
	if err := s.lay.Check(i); err != nil {
		return err
	}
	owner, raddr := s.addrOf(i)
	return pe.comm.AtomicMin(owner, raddr, v)
}

// AtomicMax atomically raises element i to v if larger (signed),
// fire-and-forget; fenced by Fence/Barrier.
func (pe *PE) AtomicMax(s *Shared, i, v int64) error {
	if err := s.lay.Check(i); err != nil {
		return err
	}
	owner, raddr := s.addrOf(i)
	return pe.comm.AtomicMax(owner, raddr, v)
}

// Fence blocks until every PUT this PE issued has been delivered and
// acknowledged and every fire-and-forget atomic has executed — the
// SHMEM quiet operation.
func (pe *PE) Fence() {
	pe.comm.AckWait()
	pe.comm.FenceAtomics()
}

// Barrier fences this PE's outstanding traffic and synchronizes all
// cells: after it returns, every cell's prior puts and atomics are
// globally visible (lgp_barrier).
func (pe *PE) Barrier() {
	pe.Fence()
	pe.comm.Barrier()
}

// ReduceAdd returns the sum of x over all cells (comm-register scalar
// reduction; exact for integers below 2^53). Collective.
func (pe *PE) ReduceAdd(x float64) float64 {
	return pe.sync.Reduce(trace.AllGroup, trace.ReduceSum, x)
}

// ReduceMax returns the max of x over all cells. Collective.
func (pe *PE) ReduceMax(x float64) float64 {
	return pe.sync.Reduce(trace.AllGroup, trace.ReduceMax, x)
}

// ReduceMin returns the min of x over all cells. Collective.
func (pe *PE) ReduceMin(x float64) float64 {
	return pe.sync.Reduce(trace.AllGroup, trace.ReduceMin, x)
}
