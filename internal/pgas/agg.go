package pgas

import (
	"encoding/binary"
	"fmt"

	"ap1000plus/internal/core"
	"ap1000plus/internal/mc"
	"ap1000plus/internal/mem"
	"ap1000plus/internal/obs"
	"ap1000plus/internal/topology"
)

// The aggregation layer is the repo's exstack: fine-grained PGAS
// operations are not issued one message at a time but packed into
// per-destination buffers of 3-word packets, and exchanged in bulk
// synchronous rounds (Advance). One round ships at most one PUT per
// (src,dst) pair — so a round's wire cost is O(P) messages per cell
// regardless of how many fine-grained operations it carries — into a
// per-source mailbox region on the destination, where the owner
// applies the packets to its partition locally. Fetching operations
// (Get, FetchAdd) are split-phase: the request travels in one round,
// the owner pushes the response packet, and it arrives in a later
// round, completing a caller-registered pointer or callback. Flush
// keeps advancing until a global reduction shows no cell holds queued
// or outstanding work.
//
// Rounds are collective and deterministically ordered: every cell
// sends exactly one region to every other cell per round (a count of
// zero packets still sends the count word, so the receive-flag target
// is exactly rounds*(P-1)), applies regions in source order, and
// barriers before the next round may reuse the regions. The final
// memory image therefore does not depend on wire timing — the
// property the naive-vs-aggregated conformance suite pins.

// aggregation packet opcodes (w0 bits 0..3).
const (
	aopPut = iota + 1
	aopAdd
	aopMin
	aopMax
	aopGet
	aopFetchAdd
	aopResp
)

// packetWords is the fixed packet size: w0 = op|arr|slot, w1 = value,
// w2 = response tag.
const packetWords = 3

// DefaultAggPackets is the default per-destination region capacity.
const DefaultAggPackets = 256

// slot field bounds: op takes bits 0..3, array id bits 4..15, slot
// bits 16..63.
const maxSlot = int64(1) << 47

// Aggregator owns the machine-wide exchange state: the symmetric
// mailbox segments (P regions per cell, one per source) and the
// symmetric mailbox flag. Build once after NewHeap, then Bind a PE on
// every cell.
type Aggregator struct {
	h        *Heap
	packets  int64
	regBytes int64
	mailSegs []*mem.Segment
	mailB    [][]byte
	mbFlag   mc.FlagID
	pes      []*AggPE
}

// NewAggregator builds the exchange buffers: packets is the
// per-destination region capacity (DefaultAggPackets if <= 0).
func NewAggregator(h *Heap, packets int) (*Aggregator, error) {
	if packets <= 0 {
		packets = DefaultAggPackets
	}
	ag := &Aggregator{
		h: h, packets: int64(packets),
		regBytes: (1 + packetWords*int64(packets)) * 8,
		mailSegs: make([]*mem.Segment, h.np),
		mailB:    make([][]byte, h.np),
		pes:      make([]*AggPE, h.np),
	}
	for id := 0; id < h.np; id++ {
		cell := h.m.Cell(topology.CellID(id))
		seg, b, err := cell.AllocBytes("pgas.aggmail", int64(h.np)*ag.regBytes)
		if err != nil {
			return nil, fmt.Errorf("pgas: NewAggregator: cell %d: %w", id, err)
		}
		ag.mailSegs[id], ag.mailB[id] = seg, b
		// The mailbox flag must carry the same id on every cell: a
		// sender raises it by number on the destination. Lockstep
		// allocation guarantees it as long as heap construction is
		// itself symmetric.
		f := cell.Flags.Alloc()
		if id == 0 {
			ag.mbFlag = f
		} else if f != ag.mbFlag {
			return nil, fmt.Errorf("pgas: NewAggregator: asymmetric flag allocation (cell %d got %d, cell 0 got %d)", id, f, ag.mbFlag)
		}
	}
	return ag, nil
}

// PE returns rank's bound AggPE, once Bind has run.
func (ag *Aggregator) PE(rank int) *AggPE { return ag.pes[rank] }

// Quiesced checks every bound AggPE drained (no queued packets, no
// outstanding fetches, no leaked response tags).
func (ag *Aggregator) Quiesced() error {
	for _, a := range ag.pes {
		if a == nil {
			continue
		}
		if err := a.Quiesced(); err != nil {
			return err
		}
	}
	return nil
}

// aggWait is a registered completion for a split-phase fetch: exactly
// one of ptr/fn is set.
type aggWait struct {
	ptr *int64
	fn  func(int64)
}

// AggPE is one cell's aggregation context. Use it only from that
// cell's SPMD goroutine; Advance and Flush are collective over all
// cells.
type AggPE struct {
	ag *Aggregator
	pe *PE
	me int
	np int

	outSeg   *mem.Segment
	outB     []byte
	sendFlag mc.FlagID
	rounds   int64

	// Per-destination packet queues (flattened 3-word packets), with
	// a consumed-word head so a region-full round does not reshuffle
	// the slice. Push never blocks: overflow simply waits for a later
	// round.
	q      [][]uint64
	qh     []int
	queued int64

	// Split-phase fetch completions: tab entries addressed by the tag
	// riding the packet, recycled through a free list.
	tab         []aggWait
	free        []int32
	outstanding int64

	obs      *obs.CellCounters
	applyErr error
}

// Bind builds the aggregation context for one PE. Like NewPE, call it
// for every cell in rank order.
func (ag *Aggregator) Bind(pe *PE) (*AggPE, error) {
	a := &AggPE{
		ag: ag, pe: pe, me: pe.me, np: pe.np,
		q:  make([][]uint64, pe.np),
		qh: make([]int, pe.np),
	}
	var err error
	a.outSeg, a.outB, err = pe.cell.AllocBytes("pgas.aggout", int64(pe.np)*ag.regBytes)
	if err != nil {
		return nil, fmt.Errorf("pgas: Bind cell %d: %w", pe.me, err)
	}
	a.sendFlag = pe.cell.Flags.Alloc()
	if o := ag.h.m.Observer(); o != nil {
		a.obs = o.Cell(pe.me)
	}
	ag.pes[pe.me] = a
	return a, nil
}

// PE returns the underlying naive PE.
func (a *AggPE) PE() *PE { return a.pe }

// Pending reports buffered packets plus outstanding fetches.
func (a *AggPE) Pending() int64 { return a.queued + a.outstanding }

// Rounds reports how many exchange rounds this PE has run.
func (a *AggPE) Rounds() int64 { return a.rounds }

// push buffers one packet for the owner of (s, i).
func (a *AggPE) push(op uint64, s *Shared, i, val int64, tag uint64) error {
	if err := s.lay.Check(i); err != nil {
		return err
	}
	slot := s.lay.Slot(i)
	if slot >= maxSlot {
		return fmt.Errorf("pgas: %s: slot %d exceeds packet field", s.name, slot)
	}
	d := int(s.lay.Owner(i))
	a.q[d] = append(a.q[d], op|uint64(s.id)<<4|uint64(slot)<<16, uint64(val), tag)
	a.queued++
	if a.obs != nil {
		a.obs.AggPushes.Add(1)
	}
	return nil
}

// Put buffers a store of v into element i.
func (a *AggPE) Put(s *Shared, i, v int64) error { return a.push(aopPut, s, i, v, 0) }

// Add buffers an atomic add of delta to element i.
func (a *AggPE) Add(s *Shared, i, delta int64) error { return a.push(aopAdd, s, i, delta, 0) }

// Min buffers an atomic signed min of element i against v.
func (a *AggPE) Min(s *Shared, i, v int64) error { return a.push(aopMin, s, i, v, 0) }

// Max buffers an atomic signed max of element i against v.
func (a *AggPE) Max(s *Shared, i, v int64) error { return a.push(aopMax, s, i, v, 0) }

// newTag registers a completion and returns its tag.
func (a *AggPE) newTag(w aggWait) uint64 {
	var idx int32
	if n := len(a.free); n > 0 {
		idx = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		idx = int32(len(a.tab))
		a.tab = append(a.tab, aggWait{})
	}
	a.tab[idx] = w
	a.outstanding++
	return uint64(idx)
}

// Get buffers a split-phase load of element i; *dst is filled by the
// round that carries the response (guaranteed complete after Flush).
func (a *AggPE) Get(s *Shared, i int64, dst *int64) error {
	if dst == nil {
		return fmt.Errorf("pgas: Get %s: nil destination", s.name)
	}
	return a.push(aopGet, s, i, 0, a.newTag(aggWait{ptr: dst}))
}

// FetchAdd buffers a split-phase fetch-and-add of delta to element i;
// fn runs with the previous value when the response arrives, and may
// itself push further aggregated operations (the conveyor pattern).
func (a *AggPE) FetchAdd(s *Shared, i, delta int64, fn func(old int64)) error {
	if fn == nil {
		return fmt.Errorf("pgas: FetchAdd %s: nil completion", s.name)
	}
	return a.push(aopFetchAdd, s, i, delta, a.newTag(aggWait{fn: fn}))
}

// respond pushes a response packet back to src's completion tag.
func (a *AggPE) respond(src int, tag uint64, val int64) {
	a.q[src] = append(a.q[src], aopResp, uint64(val), tag)
	a.queued++
	if a.obs != nil {
		a.obs.AggPushes.Add(1)
	}
}

// fillRegion packs up to the region capacity of dst-bound packets
// into an out (or self-mailbox) region and returns the packet count.
func (a *AggPE) fillRegion(reg []byte, d int) int64 {
	n := int64(len(a.q[d])-a.qh[d]) / packetWords
	if n > a.ag.packets {
		n = a.ag.packets
	}
	binary.LittleEndian.PutUint64(reg, uint64(n))
	for k := int64(0); k < n*packetWords; k++ {
		binary.LittleEndian.PutUint64(reg[8+k*8:], a.q[d][a.qh[d]+int(k)])
	}
	a.qh[d] += int(n * packetWords)
	if a.qh[d] == len(a.q[d]) {
		a.q[d] = a.q[d][:0]
		a.qh[d] = 0
	}
	a.queued -= n
	return n
}

// Advance runs one collective exchange round: pack and ship one
// region to every destination (one batched doorbell), wait for the
// round's P-1 arrivals, apply the received packets in source order,
// and barrier. Every cell must call Advance the same number of times
// — Flush does this bookkeeping for you.
func (a *AggPE) Advance() error {
	if a.applyErr != nil {
		return a.applyErr
	}
	a.rounds++
	sent := int64(0)
	b := a.pe.comm.Batch()
	for d := 0; d < a.np; d++ {
		if d == a.me {
			continue
		}
		base := int64(d) * a.ag.regBytes
		reg := a.outB[base : base+a.ag.regBytes]
		n := a.fillRegion(reg, d)
		sent += n
		size := (1 + n*packetWords) * 8
		a.pe.cell.SanWrite(a.outSeg.Base()+mem.Addr(base), mem.Contiguous(size), "pgas agg pack")
		b.Put(core.Transfer{
			To:     topology.CellID(d),
			Remote: a.ag.mailSegs[d].Base() + mem.Addr(int64(a.me)*a.ag.regBytes),
			Local:  a.outSeg.Base() + mem.Addr(base),
			Size:   size, SendFlag: a.sendFlag, RecvFlag: a.ag.mbFlag,
		})
	}
	if err := b.Commit(); err != nil {
		return err
	}
	// My own packets skip the wire: fill the self mailbox region
	// directly.
	selfBase := int64(a.me) * a.ag.regBytes
	a.fillRegion(a.ag.mailB[a.me][selfBase:selfBase+a.ag.regBytes], a.me)
	// Exact flag accounting: every peer sends exactly one region per
	// round (empty rounds still ship the count word), so arrival and
	// send-completion targets are both rounds*(P-1).
	target := a.rounds * int64(a.np-1)
	a.pe.comm.WaitFlag(a.ag.mbFlag, target)
	a.pe.comm.WaitFlag(a.sendFlag, target)
	applied := int64(0)
	for src := 0; src < a.np; src++ {
		applied += a.apply(src)
	}
	if a.obs != nil {
		a.obs.AggAdvances.Add(1)
		a.obs.AggPacketsSent.Add(sent)
		a.obs.AggApplied.Add(applied)
	}
	// No cell starts the next round (reusing mailbox regions) until
	// every cell has applied this one.
	a.pe.comm.Barrier()
	return a.applyErr
}

// apply decodes one source's mailbox region and applies its packets
// to my partition.
func (a *AggPE) apply(src int) int64 {
	base := int64(src) * a.ag.regBytes
	reg := a.ag.mailB[a.me][base:]
	cnt := int64(binary.LittleEndian.Uint64(reg))
	a.pe.cell.SanRead(a.ag.mailSegs[a.me].Base()+mem.Addr(base), mem.Contiguous((1+cnt*packetWords)*8), "pgas agg apply")
	for k := int64(0); k < cnt; k++ {
		w0 := binary.LittleEndian.Uint64(reg[8+k*packetWords*8:])
		val := int64(binary.LittleEndian.Uint64(reg[16+k*packetWords*8:]))
		tag := binary.LittleEndian.Uint64(reg[24+k*packetWords*8:])
		op := w0 & 0xf
		if op == aopResp {
			idx := int32(tag)
			w := a.tab[idx]
			a.tab[idx] = aggWait{}
			a.free = append(a.free, idx)
			a.outstanding--
			if w.ptr != nil {
				*w.ptr = val
			}
			if w.fn != nil {
				w.fn(val)
			}
			continue
		}
		arr := int(w0 >> 4 & 0xfff)
		if arr >= len(a.ag.h.arrays) {
			a.fail(fmt.Errorf("pgas: apply: bad array id %d from cell %d", arr, src))
			return k
		}
		s := a.ag.h.arrays[arr]
		slot := int64(w0 >> 16)
		if slot >= s.lay.SlotsOn(int64(a.me)) {
			a.fail(fmt.Errorf("pgas: apply: %s slot %d out of range on cell %d (from cell %d)", s.name, slot, a.me, src))
			return k
		}
		switch op {
		case aopPut:
			a.pe.setLocalWord(s, slot, val)
		case aopAdd, aopMin, aopMax:
			old := a.pe.localWord(s, slot)
			stored, _ := mc.ApplyAtomic(aggAtomicOp(op), old, val, 0)
			a.pe.setLocalWord(s, slot, stored)
		case aopGet:
			a.respond(src, tag, a.pe.localWord(s, slot))
		case aopFetchAdd:
			old := a.pe.localWord(s, slot)
			a.pe.setLocalWord(s, slot, old+val)
			a.respond(src, tag, old)
		default:
			a.fail(fmt.Errorf("pgas: apply: bad opcode %d from cell %d", op, src))
			return k
		}
	}
	return cnt
}

// aggAtomicOp maps a non-fetching packet opcode onto the MC's atomic
// suite, so aggregated updates apply bit-identically to naive ones.
func aggAtomicOp(op uint64) mc.AtomicOp {
	switch op {
	case aopMin:
		return mc.AtomicMin
	case aopMax:
		return mc.AtomicMax
	default:
		return mc.AtomicAdd
	}
}

// fail latches the first apply error; subsequent Advance calls
// return it.
func (a *AggPE) fail(err error) {
	if a.applyErr == nil {
		a.applyErr = err
	}
}

// Flush advances until a global reduction shows no cell holds queued
// packets or outstanding fetches — every buffered operation applied,
// every response delivered. Collective; all cells must call it
// together.
func (a *AggPE) Flush() error {
	for {
		if err := a.Advance(); err != nil {
			return err
		}
		if a.pe.ReduceAdd(float64(a.queued+a.outstanding)) == 0 {
			return nil
		}
	}
}

// Quiesced verifies the drained invariant after a Flush: nothing
// buffered, nothing outstanding, every response tag back on the free
// list.
func (a *AggPE) Quiesced() error {
	if a.queued != 0 || a.outstanding != 0 {
		return fmt.Errorf("pgas: cell %d not quiesced: %d queued, %d outstanding", a.me, a.queued, a.outstanding)
	}
	for d := range a.q {
		if len(a.q[d]) != 0 || a.qh[d] != 0 {
			return fmt.Errorf("pgas: cell %d not quiesced: dst %d holds %d words (head %d)", a.me, d, len(a.q[d]), a.qh[d])
		}
	}
	if len(a.free) != len(a.tab) {
		return fmt.Errorf("pgas: cell %d not quiesced: %d of %d response tags leaked", a.me, len(a.tab)-len(a.free), len(a.tab))
	}
	return nil
}
