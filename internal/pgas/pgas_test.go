package pgas

import (
	"testing"

	"ap1000plus/internal/machine"
	"ap1000plus/internal/topology"
)

// rig is a built machine + heap + per-cell PEs for tests.
type rig struct {
	m    *machine.Machine
	h    *Heap
	pes  []*PE
	aggs []*AggPE
}

func newRig(t testing.TB, cfg machine.Config, agg bool, packets int) *rig {
	t.Helper()
	if cfg.Width == 0 {
		cfg.Width, cfg.Height = 3, 2
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeap(m)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{m: m, h: h, pes: make([]*PE, m.Cells())}
	build := func() error {
		for id := 0; id < m.Cells(); id++ {
			pe, err := NewPE(h, m.Cell(topology.CellID(id)))
			if err != nil {
				return err
			}
			r.pes[id] = pe
		}
		return nil
	}
	if err := build(); err != nil {
		t.Fatal(err)
	}
	if agg {
		ag, err := NewAggregator(h, packets)
		if err != nil {
			t.Fatal(err)
		}
		r.aggs = make([]*AggPE, m.Cells())
		for id := 0; id < m.Cells(); id++ {
			a, err := ag.Bind(r.pes[id])
			if err != nil {
				t.Fatal(err)
			}
			r.aggs[id] = a
		}
	}
	return r
}

func (r *rig) run(t testing.TB, body func(pe *PE) error) {
	t.Helper()
	if err := r.m.Run(func(c *machine.Cell) error {
		return body(r.pes[c.ID()])
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.m.SanitizeErr(); err != nil {
		t.Fatal(err)
	}
	if err := r.m.FaultErr(); err != nil {
		t.Fatal(err)
	}
}

// TestPutGetInt64 moves fine-grained words across every (src,dst)
// pair, including self, and checks visibility after a barrier.
func TestPutGetInt64(t *testing.T) {
	r := newRig(t, machine.Config{Sanitize: true}, false, 0)
	n := int64(4 * r.h.NP())
	s, err := r.h.Alloc("a", n)
	if err != nil {
		t.Fatal(err)
	}
	np := int64(r.h.NP())
	r.run(t, func(pe *PE) error {
		me := int64(pe.Rank())
		// Each index is written by exactly one PE: the one the index
		// hashes to, independent of the owner.
		for i := int64(0); i < n; i++ {
			if (i*7+3)%np == me {
				if err := pe.PutInt64(s, i, 1000+i); err != nil {
					return err
				}
			}
		}
		pe.Barrier()
		for i := int64(0); i < n; i++ {
			v, err := pe.GetInt64(s, (i+me)%n)
			if err != nil {
				return err
			}
			if want := 1000 + (i+me)%n; v != want {
				t.Errorf("cell %d: a[%d] = %d, want %d", me, (i+me)%n, v, want)
			}
		}
		return nil
	})
}

// TestMemPutGet moves owner-local runs and checks the run semantics:
// PutMem at index i writes elements i, i+P, i+2P, ...
func TestMemPutGet(t *testing.T) {
	r := newRig(t, machine.Config{Sanitize: true}, false, 0)
	np := int64(r.h.NP())
	n := 700*np + 3 // multi-chunk runs, non-divisible size
	s, err := r.h.Alloc("runs", n)
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, func(pe *PE) error {
		me := int64(pe.Rank())
		// Write the partition of the next cell, read back the one the
		// previous cell wrote.
		dst := (me + 1) % np
		lay := s.Layout()
		src := make([]int64, lay.SlotsOn(dst))
		for k := range src {
			src[k] = dst*1_000_000 + int64(k)
		}
		if err := pe.PutMem(s, dst, src); err != nil {
			return err
		}
		pe.Barrier()
		got := make([]int64, lay.SlotsOn(me))
		if err := pe.GetMem(s, me, got); err != nil {
			return err
		}
		for k, v := range got {
			if want := me*1_000_000 + int64(k); v != want {
				t.Errorf("cell %d: slot %d = %d, want %d", me, k, v, want)
			}
		}
		return nil
	})
	// The runs wrote every element; spot-check through the global view.
	for i := int64(0); i < n; i++ {
		lay := s.Layout()
		if want := lay.Owner(i)*1_000_000 + lay.Slot(i); s.Word(i) != want {
			t.Fatalf("a[%d] = %d, want %d", i, s.Word(i), want)
		}
	}
}

// TestAtomicsAndReductions checks the atomic suite against analytic
// totals and the exact integer collectives.
func TestAtomicsAndReductions(t *testing.T) {
	r := newRig(t, machine.Config{Sanitize: true}, false, 0)
	np := int64(r.h.NP())
	s, err := r.h.Alloc("counters", np+3)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 40
	r.run(t, func(pe *PE) error {
		me := int64(pe.Rank())
		for k := 0; k < iters; k++ {
			if err := pe.AtomicAdd(s, 0, 1); err != nil {
				return err
			}
			if err := pe.AtomicMin(s, 1, -(me*iters + int64(k))); err != nil {
				return err
			}
			if err := pe.AtomicMax(s, 2, me*iters+int64(k)); err != nil {
				return err
			}
		}
		// Fetching ops: every previous value of a private counter.
		if _, err := pe.FetchAdd(s, 3+me, 5); err != nil {
			return err
		}
		pe.Barrier()
		sum, err := pe.ReduceAddInt64(me + 1)
		if err != nil {
			return err
		}
		if want := np * (np + 1) / 2; sum != want {
			t.Errorf("cell %d: ReduceAddInt64 = %d, want %d", me, sum, want)
		}
		mn, err := pe.ReduceMinInt64(-me)
		if err != nil {
			return err
		}
		if want := -(np - 1); mn != want {
			t.Errorf("cell %d: ReduceMinInt64 = %d, want %d", me, mn, want)
		}
		prefix, total, err := pe.ScanAddInt64(me)
		if err != nil {
			return err
		}
		if wantP, wantT := me*(me-1)/2+0, np*(np-1)/2; total != wantT || prefix != func() int64 {
			var s int64
			for r := int64(0); r < me; r++ {
				s += r
			}
			return s
		}() {
			t.Errorf("cell %d: scan = (%d,%d), want (…,%d)", me, prefix, total, wantT)
			_ = wantP
		}
		v, err := pe.Broadcast(7777, 1%int(np))
		if err != nil {
			return err
		}
		if me == int64(1%int(np)) {
			v = 7777
		}
		if v != 7777 {
			t.Errorf("cell %d: broadcast = %d", me, v)
		}
		if got := pe.ReduceAdd(1); got != float64(np) {
			t.Errorf("cell %d: ReduceAdd = %v", me, got)
		}
		return nil
	})
	if got := s.Word(0); got != np*iters {
		t.Errorf("counter = %d, want %d", s.Word(0), np*iters)
	}
	if got, want := s.Word(1), -((np-1)*iters + iters - 1); got != want {
		t.Errorf("min cell = %d, want %d", got, want)
	}
	if got, want := s.Word(2), (np-1)*iters+iters-1; got != want {
		t.Errorf("max cell = %d, want %d", got, want)
	}
	for me := int64(0); me < np; me++ {
		if got := s.Word(3 + me); got != 5 {
			t.Errorf("private counter %d = %d, want 5", me, got)
		}
	}
}

// TestReadAll gathers a whole array on every cell.
func TestReadAll(t *testing.T) {
	r := newRig(t, machine.Config{}, false, 0)
	n := int64(41) // prime vs np=6
	s, err := r.h.Alloc("g", n)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		s.SetWord(i, i*i)
	}
	r.run(t, func(pe *PE) error {
		got := make([]int64, n)
		if err := pe.ReadAll(s, got); err != nil {
			return err
		}
		for i, v := range got {
			if v != int64(i)*int64(i) {
				t.Errorf("cell %d: g[%d] = %d", pe.Rank(), i, v)
			}
		}
		return nil
	})
}
