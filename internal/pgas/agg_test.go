package pgas

import (
	"testing"

	"ap1000plus/internal/machine"
)

// aggWorkload drives a mixed put/add/min/max/get/fetchadd stream with
// a per-cell deterministic LCG. Puts use exclusive per-index writers
// so the final image is mode-independent.
func aggWorkload(t *testing.T, r *rig, s *Shared, gets *Shared, iters int) ([][]int64, [][]int64) {
	t.Helper()
	np := int64(r.h.NP())
	n := s.Len()
	got := make([][]int64, np)     // per-cell Get results
	fetched := make([][]int64, np) // per-cell FetchAdd previous values
	r.run(t, func(pe *PE) error {
		me := int64(pe.Rank())
		a := r.aggs[pe.Rank()]
		rng := uint64(me*2654435761 + 12345)
		next := func() uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng >> 11 }
		dst := make([]int64, iters)
		for k := 0; k < iters; k++ {
			i := int64(next() % uint64(n))
			switch next() % 4 {
			case 0:
				// Exclusive writer per index: value depends only on i.
				if (i*7+3)%np == me {
					if err := a.Put(s, i, i*3+1); err != nil {
						return err
					}
				}
			case 1:
				if err := a.Add(s, i, int64(next()%100)); err != nil {
					return err
				}
			case 2:
				if err := a.Min(s, i, int64(next()%1000)-500); err != nil {
					return err
				}
			default:
				if err := a.Get(gets, i%gets.Len(), &dst[k]); err != nil {
					return err
				}
			}
		}
		// A chained fetch: the completion pushes a second-hop add, the
		// conveyor pattern.
		var olds []int64
		err := a.FetchAdd(s, me%n, 1, func(old int64) {
			olds = append(olds, old)
			_ = a.Add(s, (me+1)%n, 1)
		})
		if err != nil {
			return err
		}
		if err := a.Flush(); err != nil {
			return err
		}
		pe.Barrier()
		got[me], fetched[me] = dst, olds
		return nil
	})
	return got, fetched
}

// TestAggFlushQuiesces pins the drain invariant: after Flush no AggPE
// holds queued packets, outstanding fetches or leaked response tags,
// and the mailbox flag count is exactly rounds*(P-1) on every cell —
// no stray or missing region arrivals.
func TestAggFlushQuiesces(t *testing.T) {
	r := newRig(t, machine.Config{Sanitize: true}, true, 8)
	s, err := r.h.Alloc("data", 101)
	if err != nil {
		t.Fatal(err)
	}
	gets, err := r.h.Alloc("static", 37)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < gets.Len(); i++ {
		gets.SetWord(i, i*11)
	}
	aggWorkload(t, r, s, gets, 300)
	ag := r.aggs[0].ag
	if err := ag.Quiesced(); err != nil {
		t.Error(err)
	}
	rounds := r.aggs[0].Rounds()
	if rounds == 0 {
		t.Fatal("no exchange rounds ran")
	}
	for id, a := range r.aggs {
		if a.Rounds() != rounds {
			t.Errorf("cell %d ran %d rounds, cell 0 ran %d", id, a.Rounds(), rounds)
		}
		flags := r.m.Cell(r.pes[id].cell.ID()).Flags
		if got, want := flags.Load(ag.mbFlag), rounds*int64(r.h.NP()-1); got != want {
			t.Errorf("cell %d: mailbox flag = %d, want %d", id, got, want)
		}
	}
}

// TestAggMatchesNaiveSmall is the white-box conformance check: the
// same mixed workload applied through the aggregator and through the
// naive PE operations must leave bit-identical memory. (The root
// pgas_property_test.go drives the full matrix; this one pins the
// packet encode/decode path in isolation.)
func TestAggMatchesNaiveSmall(t *testing.T) {
	run := func(agg bool) []int64 {
		r := newRig(t, machine.Config{}, true, 16)
		s, err := r.h.Alloc("m", 64)
		if err != nil {
			t.Fatal(err)
		}
		np := int64(r.h.NP())
		r.run(t, func(pe *PE) error {
			me := int64(pe.Rank())
			a := r.aggs[pe.Rank()]
			// Index classes keep op kinds disjoint: puts and adds on
			// one index would not commute, so no phase-free workload
			// can mix them and stay order-independent.
			for i := int64(0); i < s.Len(); i++ {
				switch i % 3 {
				case 0: // exclusive-writer put
					if (i*5+1)%np != me {
						continue
					}
					if agg {
						if err := a.Put(s, i, i+100); err != nil {
							return err
						}
					} else if err := pe.PutInt64(s, i, i+100); err != nil {
						return err
					}
				case 1: // commutative adds from every cell
					if agg {
						if err := a.Add(s, i, me+1); err != nil {
							return err
						}
					} else if err := pe.AtomicAdd(s, i, me+1); err != nil {
						return err
					}
				default: // commutative max from every cell
					if agg {
						if err := a.Max(s, i, 90+me); err != nil {
							return err
						}
					} else if err := pe.AtomicMax(s, i, 90+me); err != nil {
						return err
					}
				}
			}
			if agg {
				if err := a.Flush(); err != nil {
					return err
				}
			}
			pe.Barrier()
			return nil
		})
		return s.Words()
	}
	// Note: adds and max commute, and each put index has one writer,
	// so the two modes must agree exactly even though operation order
	// differs.
	a, n := run(true), run(false)
	for i := range a {
		if a[i] != n[i] {
			t.Errorf("m[%d]: aggregated %d != naive %d", i, a[i], n[i])
		}
	}
}

// TestPGASAggregatedZeroAlloc guards the aggregated push fast path:
// after warmup has grown the per-destination queues, buffering a
// fine-grained operation allocates nothing (the aggregation layer
// must not trade message count for garbage). Wired into make verify.
func TestPGASAggregatedZeroAlloc(t *testing.T) {
	r := newRig(t, machine.Config{}, true, 64)
	s, err := r.h.Alloc("z", 256)
	if err != nil {
		t.Fatal(err)
	}
	a := r.aggs[0]
	const ops = 128
	reset := func() {
		for d := range a.q {
			a.q[d] = a.q[d][:0]
			a.qh[d] = 0
		}
		a.queued = 0
	}
	body := func() {
		for k := int64(0); k < ops; k++ {
			if err := a.Put(s, k%s.Len(), k); err != nil {
				t.Fatal(err)
			}
			if err := a.Add(s, (k*3)%s.Len(), 1); err != nil {
				t.Fatal(err)
			}
		}
		reset()
	}
	body() // warmup: grow queue capacity
	if allocs := testing.AllocsPerRun(20, body); allocs != 0 {
		t.Errorf("aggregated push path allocates %.1f times per %d ops, want 0", allocs, 2*ops)
	}
}
