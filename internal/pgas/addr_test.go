package pgas

import "testing"

// TestLayoutGolden pins the round-robin mapping at the cell counts
// the acceptance matrix cares about (P = 1, 2, 3, 64), including
// array sizes P does not divide: exact (owner, slot) pairs, exact
// per-cell populations, and the Index inverse.
func TestLayoutGolden(t *testing.T) {
	cases := []struct {
		p, n        int64
		i           int64
		owner, slot int64
	}{
		// P=1: everything local.
		{p: 1, n: 7, i: 0, owner: 0, slot: 0},
		{p: 1, n: 7, i: 6, owner: 0, slot: 6},
		// P=2, odd size: cell 0 holds one more element.
		{p: 2, n: 7, i: 0, owner: 0, slot: 0},
		{p: 2, n: 7, i: 1, owner: 1, slot: 0},
		{p: 2, n: 7, i: 6, owner: 0, slot: 3},
		// P=3, n=10: cells hold 4,3,3.
		{p: 3, n: 10, i: 7, owner: 1, slot: 2},
		{p: 3, n: 10, i: 9, owner: 0, slot: 3},
		{p: 3, n: 10, i: 8, owner: 2, slot: 2},
		// P=64, non-divisible size.
		{p: 64, n: 1000, i: 999, owner: 39, slot: 15},
		{p: 64, n: 1000, i: 63, owner: 63, slot: 0},
		{p: 64, n: 1000, i: 64, owner: 0, slot: 1},
	}
	for _, c := range cases {
		l := Layout{N: c.n, P: c.p}
		if got := l.Owner(c.i); got != c.owner {
			t.Errorf("P=%d N=%d: Owner(%d) = %d, want %d", c.p, c.n, c.i, got, c.owner)
		}
		if got := l.Slot(c.i); got != c.slot {
			t.Errorf("P=%d N=%d: Slot(%d) = %d, want %d", c.p, c.n, c.i, got, c.slot)
		}
		if got := l.Index(c.owner, c.slot); got != c.i {
			t.Errorf("P=%d N=%d: Index(%d,%d) = %d, want %d", c.p, c.n, c.owner, c.slot, got, c.i)
		}
	}
}

// TestLayoutRoundTrip sweeps every index of a spread of shapes:
// Index(Owner(i), Slot(i)) == i, slots stay inside the owner's
// population, populations sum to N, and no cell exceeds the symmetric
// per-cell reservation.
func TestLayoutRoundTrip(t *testing.T) {
	for _, p := range []int64{1, 2, 3, 64} {
		for _, n := range []int64{1, 2, 3, 7, 63, 64, 65, 1000} {
			l := Layout{N: n, P: p}
			var sum int64
			for owner := int64(0); owner < p; owner++ {
				if l.SlotsOn(owner) > l.SlotsPerCell() {
					t.Fatalf("P=%d N=%d: cell %d holds %d slots, reservation is %d",
						p, n, owner, l.SlotsOn(owner), l.SlotsPerCell())
				}
				sum += l.SlotsOn(owner)
			}
			if sum != n {
				t.Errorf("P=%d N=%d: populations sum to %d", p, n, sum)
			}
			for i := int64(0); i < n; i++ {
				owner, slot := l.Owner(i), l.Slot(i)
				if slot >= l.SlotsOn(owner) {
					t.Fatalf("P=%d N=%d: index %d lands at slot %d of cell %d, population %d",
						p, n, i, slot, owner, l.SlotsOn(owner))
				}
				if back := l.Index(owner, slot); back != i {
					t.Fatalf("P=%d N=%d: index %d round-trips to %d", p, n, i, back)
				}
			}
		}
	}
}

// FuzzLayoutInverse fuzzes the mapping inverse: for any in-range
// index the (owner, slot) pair must round-trip, and for any in-range
// (owner, slot) pair the index must map back.
func FuzzLayoutInverse(f *testing.F) {
	f.Add(int64(3), int64(10), int64(7))
	f.Add(int64(64), int64(1000), int64(999))
	f.Add(int64(1), int64(1), int64(0))
	f.Fuzz(func(t *testing.T, p, n, i int64) {
		if p < 1 || p > 1<<16 || n < 1 || n > 1<<40 {
			t.Skip()
		}
		l := Layout{N: n, P: p}
		i = ((i % n) + n) % n
		owner, slot := l.Owner(i), l.Slot(i)
		if owner < 0 || owner >= p || slot < 0 || slot >= l.SlotsOn(owner) {
			t.Fatalf("P=%d N=%d: index %d maps outside the heap: owner %d slot %d", p, n, i, owner, slot)
		}
		if back := l.Index(owner, slot); back != i {
			t.Fatalf("P=%d N=%d: Index(Owner(%d),Slot(%d)) = %d", p, n, i, i, back)
		}
		// Inverse direction: the slot'th element of owner is i, so
		// walking owner's population must hit exactly the indices
		// congruent to owner.
		if l.Check(l.Index(owner, slot)) != nil {
			t.Fatalf("P=%d N=%d: inverse image %d out of range", p, n, l.Index(owner, slot))
		}
	})
}
