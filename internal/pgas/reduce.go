package pgas

import "fmt"

// Exact integer collectives. The comm-register reduction is float64
// (exact only below 2^53), so the integer variants go through the
// heap's P-word scratch array instead: every cell stores its
// contribution into its own scratch slot, barriers, reads all P slots
// in rank order, and folds locally — deterministic, exact, and
// identical on every cell. A trailing barrier protects the scratch
// for the next collective.

// reduceInt64 folds all cells' contributions with fold, in rank
// order.
func (pe *PE) reduceInt64(x int64, fold func(acc, v int64) int64) (int64, error) {
	sc := pe.h.scratch
	if err := pe.PutInt64(sc, int64(pe.me), x); err != nil {
		return 0, err
	}
	pe.Barrier()
	var acc int64
	for r := int64(0); r < int64(pe.np); r++ {
		v, err := pe.GetInt64(sc, r)
		if err != nil {
			return 0, err
		}
		if r == 0 {
			acc = v
		} else {
			acc = fold(acc, v)
		}
	}
	pe.Barrier()
	return acc, nil
}

// ReduceAddInt64 returns the exact sum of x over all cells.
// Collective.
func (pe *PE) ReduceAddInt64(x int64) (int64, error) {
	return pe.reduceInt64(x, func(a, v int64) int64 { return a + v })
}

// ReduceMinInt64 returns the exact signed min of x over all cells.
// Collective.
func (pe *PE) ReduceMinInt64(x int64) (int64, error) {
	return pe.reduceInt64(x, func(a, v int64) int64 {
		if v < a {
			return v
		}
		return a
	})
}

// ReduceMaxInt64 returns the exact signed max of x over all cells.
// Collective.
func (pe *PE) ReduceMaxInt64(x int64) (int64, error) {
	return pe.reduceInt64(x, func(a, v int64) int64 {
		if v > a {
			return v
		}
		return a
	})
}

// ScanAddInt64 returns the exclusive prefix sum of x by rank (the sum
// of lower ranks' contributions) and the total over all cells — the
// primitive behind deterministic position assignment (each cell
// claims [prefix, prefix+x) of a shared output). Collective.
func (pe *PE) ScanAddInt64(x int64) (prefix, total int64, err error) {
	sc := pe.h.scratch
	if err := pe.PutInt64(sc, int64(pe.me), x); err != nil {
		return 0, 0, err
	}
	pe.Barrier()
	for r := int64(0); r < int64(pe.np); r++ {
		v, gerr := pe.GetInt64(sc, r)
		if gerr != nil {
			return 0, 0, gerr
		}
		if r < int64(pe.me) {
			prefix += v
		}
		total += v
	}
	pe.Barrier()
	return prefix, total, nil
}

// Broadcast returns root's x on every cell, through the scratch
// array. Collective.
func (pe *PE) Broadcast(x int64, root int) (int64, error) {
	if root < 0 || root >= pe.np {
		return 0, fmt.Errorf("pgas: Broadcast: bad root %d", root)
	}
	sc := pe.h.scratch
	if pe.me == root {
		if err := pe.PutInt64(sc, int64(root), x); err != nil {
			return 0, err
		}
	}
	pe.Barrier()
	v, err := pe.GetInt64(sc, int64(root))
	if err != nil {
		return 0, err
	}
	pe.Barrier()
	return v, nil
}
