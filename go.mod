module ap1000plus

go 1.22
