# The verify target is the full correctness gate: compile, go vet,
# the repo's own static checker (cmd/apvet), and the test suite under
# the Go race detector, plus two guards that only mean anything
# without -race: the zero-allocation PUT issue path (sync.Pool drops
# items under the race detector) and the deterministic table golden.
# CI and pre-commit should run `make verify`.

GO ?= go

.PHONY: all build test verify apvet apvet-baseline bench fuzz chaos

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# apvet enforces the simulator's communication discipline: no raw
# DRAM writes behind the MSC+, every PUT/GET flag waited on and
# balanced against its wait threshold, no blocking calls in delivery
# handlers (direct or through helpers), no microsecond/nanosecond unit
# mixing. Test files are scanned too. apvet.json is the machine-
# readable report of the latest run. See cmd/apvet and the "Typed
# static analysis" section of DESIGN.md.
apvet:
	$(GO) run ./cmd/apvet -json ./... > apvet.json

# apvet-baseline diffs the current report against the committed
# apvet.baseline.json, so a PR that introduces a new finding (or a new
# suppression) shows up as a diff even when the finding is suppressed.
apvet-baseline: apvet
	diff -u apvet.baseline.json apvet.json

verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/apvet -json ./... > apvet.json
	$(GO) test -race ./...
	$(GO) test -race -run 'TestConcurrentFIFOProperty|TestOverflowConcurrentFIFO' ./internal/ring/
	$(GO) test -race -run TestWireDifferential .
	$(GO) test -run 'TestPutIssueZeroAllocUnobserved|TestBatchIssueZeroAllocUnobserved' .
	$(GO) test -run TestDSMCacheHitZeroAlloc ./internal/dsm/
	$(GO) test -run TestPGASAggregatedZeroAlloc ./internal/pgas/
	$(GO) test -run TestTablesDeterministicOrder ./internal/stats/
	$(MAKE) chaos

# chaos is the fault-injection gate: the seeded chaos kernels and the
# random-workload property tests under the race detector (retransmit,
# dedup and limbo-release paths are concurrency-heavy), plus short
# fuzz passes over the fault-plan parser and the trace codec's
# corrupted-wire seeds.
chaos:
	$(GO) test -race -run 'TestChaos|TestFaultProperty|TestBatchMatchesSingleIssue|TestPGASProperty' .
	$(GO) test -fuzz FuzzPlan -fuzztime 5s ./internal/fault/
	$(GO) test -fuzz FuzzRead -fuzztime 5s ./internal/trace/

# The ring-buffer property tests and the wire differential gate run
# inside `go test -race ./...` too; the explicit lines above pin them
# as named gates — the SPSC FIFO property under the race detector, and
# the seeded chaos workload on both Link implementations (and both
# wire builds, trusted and faulty) asserting bit-identical memory and
# flag counts.

# bench also regenerates BENCH_obs.json — the Table 2 functional runs'
# full machine counter report (per-app, per-cell) — and
# BENCH_batch.json, the single-vs-batched command-issue comparison
# (commands issued, T-net messages, ns/step for the stencil,
# redistribute and matmul workloads), and BENCH_dsmcache.json, the
# coherent DSM page cache vs plain blocking remote loads (hit rate,
# message counts and wall-clock speedup on the gather kernel), and
# BENCH_pgas.json, the PGAS bale kernels naive vs aggregated (T-net
# messages per operation on histogram and index-gather), and
# BENCH_scale.json, the wire weak-scaling report (neighbor-PUT ring:
# aggregate messages/sec and ns/hop on the mutex wire up to 256 cells
# and the lock-free ring wire up to 4096), and BENCH_tenancy.json,
# the multi-tenant gang-scheduling report (open-loop Poisson job
# stream over partitioned machines: per-tenant p50/p99 sojourn latency
# and aggregate jobs/sec at 2/4/8 partitions of 64 cells), for diffing
# communication behaviour across changes.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...
	$(GO) run ./cmd/apbench -experiment table2 -metrics-json BENCH_obs.json > /dev/null
	$(GO) run ./cmd/apbench -experiment batch -batch-json BENCH_batch.json > /dev/null
	$(GO) run ./cmd/apbench -experiment dsmcache -dsmcache-json BENCH_dsmcache.json > /dev/null
	$(GO) run ./cmd/apbench -experiment atomics -atomics-json BENCH_atomics.json > /dev/null
	$(GO) run ./cmd/apbench -experiment pgas -pgas-json BENCH_pgas.json > /dev/null
	$(GO) run ./cmd/apbench -experiment scale -scale-json BENCH_scale.json > /dev/null
	$(GO) run ./cmd/apbench -experiment tenancy -tenancy-json BENCH_tenancy.json > /dev/null

# Short fuzz pass over the trace codec (corpus seeds under
# internal/trace/testdata/fuzz are always exercised by plain go test).
fuzz:
	$(GO) test -fuzz FuzzRead -fuzztime 30s ./internal/trace/
