# The verify target is the full correctness gate: compile, go vet,
# the repo's own static checker (cmd/apvet), and the test suite under
# the Go race detector. CI and pre-commit should run `make verify`.

GO ?= go

.PHONY: all build test verify apvet bench fuzz

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# apvet enforces the simulator's communication discipline: no raw
# DRAM writes behind the MSC+, every PUT/GET flag waited on, no
# blocking calls in delivery handlers, no microsecond/nanosecond unit
# mixing. See cmd/apvet and the "Correctness tooling" section of
# DESIGN.md.
apvet:
	$(GO) run ./cmd/apvet ./...

verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/apvet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# Short fuzz pass over the trace codec (corpus seeds under
# internal/trace/testdata/fuzz are always exercised by plain go test).
fuzz:
	$(GO) test -fuzz FuzzRead -fuzztime 30s ./internal/trace/
