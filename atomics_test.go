// Remote-atomic chaos and combining-equivalence suite: a hot
// fetch-and-add counter hammered through the facade must land on
// exactly P x iters under every seeded fault plan (each intermediate
// sum observed exactly once), and a combined machine must be
// indistinguishable from an uncombined one — same totals, same fetch
// multisets, bit-for-bit identical per-cell results — plain,
// sanitized, and over a lossy wire.
package ap1000plus

import (
	"sync"
	"testing"
)

// atomicCounterRun hammers one word on cell 0 with comm.FetchAdd from
// every cell and returns the final counter, the multiset of fetched
// values, and the machine metrics.
func atomicCounterRun(t *testing.T, plan *FaultPlan, combining, sanitize bool, iters int) (uint64, map[int64]int, Metrics) {
	t.Helper()
	opts := []Option{WithGrid(2, 2), WithObserve()}
	if plan != nil {
		opts = append(opts, WithFault(plan))
	}
	if combining {
		opts = append(opts, WithCombining())
	}
	if sanitize {
		opts = append(opts, WithSanitize())
	}
	m, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	seg, _, err := m.Cell(0).AllocFloat64("counter", 1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	fetched := make(map[int64]int)
	err = m.Run(func(c *Cell) error {
		comm := NewComm(c)
		for i := 0; i < iters; i++ {
			v, err := comm.FetchAdd(0, seg.Base(), 1)
			if err != nil {
				return err
			}
			mu.Lock()
			fetched[v]++
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FaultErr(); err != nil {
		t.Fatalf("fault: %v", err)
	}
	if err := m.SanitizeErr(); err != nil {
		t.Fatalf("sanitizer: %v", err)
	}
	total, err := m.Cell(0).Mem.LoadWord8(seg.Base())
	if err != nil {
		t.Fatal(err)
	}
	return total, fetched, m.Metrics()
}

// TestChaosAtomicCounter runs the hot counter under every seeded fault
// plan of the chaos suite: the final value must be exactly P x iters
// and every intermediate sum fetched exactly once — drops must not
// lose an increment, duplicates must not apply one twice.
func TestChaosAtomicCounter(t *testing.T) {
	plans := []struct{ name, spec string }{
		{"drop", "drop=0.08,seed=42"},
		{"dup", "dup=0.1,seed=7"},
		{"drop+dup", "drop=0.05,dup=0.05,seed=42"},
		{"reorder", "reorder=0.08,seed=13"},
		{"corrupt", "corrupt=0.06,seed=5"},
		{"storm", "drop=0.05,dup=0.05,reorder=0.04,corrupt=0.03,seed=99"},
	}
	const iters = 120
	for _, p := range plans {
		t.Run(p.name, func(t *testing.T) {
			plan, err := ParseFaultPlan(p.spec)
			if err != nil {
				t.Fatal(err)
			}
			total, fetched, mt := atomicCounterRun(t, plan, false, false, iters)
			np := 4
			if want := uint64(np * iters); total != want {
				t.Fatalf("final counter = %d, want %d", total, want)
			}
			for v := int64(0); v < int64(np*iters); v++ {
				if fetched[v] != 1 {
					t.Fatalf("intermediate sum %d fetched %d times, want exactly once", v, fetched[v])
				}
			}
			tot := mt.Totals()
			if tot.AtomicsExecuted != int64(np*iters) {
				t.Errorf("AtomicsExecuted = %d, want %d (an RMW was lost or re-applied)",
					tot.AtomicsExecuted, np*iters)
			}
			if mt.Fault == nil {
				t.Fatal("Metrics().Fault nil on a machine with a fault plan")
			}
			if mt.Fault.CellFaults != 0 {
				t.Fatalf("retry budget exhausted %d times under a recoverable plan", mt.Fault.CellFaults)
			}
		})
	}
}

// atomicPrivateRun is the deterministic mixed-op workload: cell c owns
// word c of every cell's block and is its only updater, so every
// fetched value and every final word is fully determined — any
// divergence between two runs is a real semantic difference. Returns
// each cell's fetch log and the final words.
func atomicPrivateRun(t *testing.T, plan *FaultPlan, combining, sanitize bool) ([][]int64, []uint64) {
	t.Helper()
	opts := []Option{WithGrid(2, 2)}
	if plan != nil {
		opts = append(opts, WithFault(plan))
	}
	if combining {
		opts = append(opts, WithCombining())
	}
	if sanitize {
		opts = append(opts, WithSanitize())
	}
	m, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	np := m.Cells()
	segs := make([]*Segment, np)
	for id := 0; id < np; id++ {
		if segs[id], _, err = m.Cell(CellID(id)).AllocFloat64("words", np); err != nil {
			t.Fatal(err)
		}
	}
	logs := make([][]int64, np)
	err = m.Run(func(c *Cell) error {
		comm := NewComm(c)
		me := int64(c.ID())
		slot := func(owner int) Addr { return segs[owner].Base() + Addr(me*8) }
		for round := 0; round < 8; round++ {
			for owner := 0; owner < np; owner++ {
				dst := CellID(owner)
				v, err := comm.FetchAdd(dst, slot(owner), me*7+int64(round)+1)
				if err != nil {
					return err
				}
				logs[me] = append(logs[me], v)
				if err := comm.AtomicMax(dst, slot(owner), me*100+int64(round*3)); err != nil {
					return err
				}
				if round%3 == 2 {
					old, err := comm.Swap(dst, slot(owner), me*1000+int64(round))
					if err != nil {
						return err
					}
					logs[me] = append(logs[me], old)
				}
			}
		}
		comm.FenceAtomics()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FaultErr(); err != nil {
		t.Fatalf("fault: %v", err)
	}
	if err := m.SanitizeErr(); err != nil {
		t.Fatalf("sanitizer: %v", err)
	}
	words := make([]uint64, 0, np*np)
	for owner := 0; owner < np; owner++ {
		for slot := 0; slot < np; slot++ {
			w, err := m.Cell(CellID(owner)).Mem.LoadWord8(segs[owner].Base() + Addr(slot*8))
			if err != nil {
				t.Fatal(err)
			}
			words = append(words, w)
		}
	}
	return logs, words
}

// TestAtomicCombinedEqualsUncombined is the equivalence property:
// turning on T-net combining changes only the message count, never the
// results — under a plain run, a sanitized run, and a seeded drop+dup
// plan. The hot counter compares fetch multisets; the private-word
// workload compares every fetched value and final word bit for bit.
func TestAtomicCombinedEqualsUncombined(t *testing.T) {
	variants := []struct {
		name     string
		sanitize bool
		spec     string
	}{
		{"plain", false, ""},
		{"sanitize", true, ""},
		{"drop+dup", false, "drop=0.05,dup=0.05,seed=42"},
	}
	parse := func(t *testing.T, spec string) *FaultPlan {
		if spec == "" {
			return nil
		}
		p, err := ParseFaultPlan(spec)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, variant := range variants {
		t.Run(variant.name, func(t *testing.T) {
			const iters = 100
			baseTotal, baseFetched, _ := atomicCounterRun(t, parse(t, variant.spec), false, variant.sanitize, iters)
			combTotal, combFetched, combM := atomicCounterRun(t, parse(t, variant.spec), true, variant.sanitize, iters)
			if combTotal != baseTotal {
				t.Fatalf("hot counter: combined total = %d, uncombined = %d", combTotal, baseTotal)
			}
			if len(combFetched) != len(baseFetched) {
				t.Fatalf("hot counter: combined fetched %d distinct sums, uncombined %d",
					len(combFetched), len(baseFetched))
			}
			for v, n := range baseFetched {
				if combFetched[v] != n {
					t.Errorf("hot counter: sum %d fetched %d times combined, %d uncombined",
						v, combFetched[v], n)
				}
			}
			if variant.spec == "" {
				if c := combM.Totals().AtomicsCombined; c == 0 {
					t.Error("combining machine absorbed no requests on a hot counter")
				}
			}

			baseLogs, baseWords := atomicPrivateRun(t, parse(t, variant.spec), false, variant.sanitize)
			combLogs, combWords := atomicPrivateRun(t, parse(t, variant.spec), true, variant.sanitize)
			for id := range baseLogs {
				if len(combLogs[id]) != len(baseLogs[id]) {
					t.Fatalf("cell %d: %d fetches combined vs %d uncombined",
						id, len(combLogs[id]), len(baseLogs[id]))
				}
				for i := range baseLogs[id] {
					if combLogs[id][i] != baseLogs[id][i] {
						t.Errorf("cell %d fetch %d: combined %d, uncombined %d",
							id, i, combLogs[id][i], baseLogs[id][i])
					}
				}
			}
			for i := range baseWords {
				if combWords[i] != baseWords[i] {
					t.Errorf("word %d: combined %#x, uncombined %#x", i, combWords[i], baseWords[i])
				}
			}
		})
	}
}

// TestAtomicBatchStaged drives non-fetching atomics through a
// CommandList: staged adds ride one doorbell, act as merge barriers
// for coalescing, and are fenced by FenceAtomics like singly-issued
// ones.
func TestAtomicBatchStaged(t *testing.T) {
	m, err := New(WithGrid(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	seg, _, err := m.Cell(0).AllocFloat64("counter", 1)
	if err != nil {
		t.Fatal(err)
	}
	const adds = 16
	err = m.Run(func(c *Cell) error {
		comm := NewComm(c)
		b := comm.Batch()
		for i := 0; i < adds; i++ {
			b.AtomicAdd(0, seg.Base(), 2)
		}
		b.AtomicMax(0, seg.Base(), 1) // no-op once the adds land
		if err := b.Commit(); err != nil {
			return err
		}
		comm.FenceAtomics()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total, err := m.Cell(0).Mem.LoadWord8(seg.Base())
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(4 * adds * 2); total != want {
		t.Fatalf("batched adds = %d, want %d", total, want)
	}
}
