// Property test for batched command issue: the same workload executed
// three ways — one doorbell per command, one CommandList per cell, and
// one coalescing CommandList per cell — must leave bit-identical
// memory images and exactly the same user-visible flag counts, while
// the coalesced run must reach the wire in measurably fewer commands.
// The comparison runs plain, under the apsan sanitizer, and over a
// seeded lossy wire (drop+dup) with reliable delivery armed.
package ap1000plus

import (
	"math/rand"
	"reflect"
	"testing"
)

const (
	bpropCells  = 4
	bpropOps    = 32            // ops issued by each cell
	bpropOutN   = 512           // floats in each cell's out buffer
	bpropRegion = 4 * bpropOps  // in-buffer floats reserved per source
	bpropSeed   = 20260805
)

// bpropOp is one logical transfer of the generated workload.
type bpropOp struct {
	kind int // 0 contiguous PUT (ack), 1 stride PUT (ack), 2 flagged PUT, 3 GET
	dst  int
	n    int // elements moved
	slot int // GET: first remote out slot read
}

// bpropWorkload generates every cell's op list from one seed. Runs of
// consecutive same-destination contiguous PUTs are common by
// construction, so the coalescing run has real merging to do.
func bpropWorkload(seed int64) (ops [][]bpropOp, flagsInto, getsBy []int) {
	rng := rand.New(rand.NewSource(seed))
	ops = make([][]bpropOp, bpropCells)
	flagsInto = make([]int, bpropCells)
	getsBy = make([]int, bpropCells)
	for id := 0; id < bpropCells; id++ {
		prev := -1
		for k := 0; k < bpropOps; k++ {
			dst := prev
			if prev < 0 || rng.Intn(2) == 0 {
				dst = rng.Intn(bpropCells - 1)
				if dst >= id {
					dst++
				}
			}
			prev = dst
			op := bpropOp{dst: dst, n: 1 + rng.Intn(4)}
			switch r := rng.Intn(10); {
			case r < 5:
				op.kind = 0
			case r < 7:
				op.kind = 1
			case r < 8:
				op.kind = 2
				op.n = 1
				flagsInto[dst]++
			default:
				op.kind = 3
				op.slot = rng.Intn(32)
				getsBy[id]++
			}
			ops[id] = append(ops[id], op)
		}
	}
	return ops, flagsInto, getsBy
}

// bpropExpect replays the workload on the host and returns the exact
// expected in/gin images.
func bpropExpect(ops [][]bpropOp) (expIn, expGin [][]float64) {
	outVal := func(id, j int) float64 { return float64(id*10000 + j) }
	expIn = make([][]float64, bpropCells)
	expGin = make([][]float64, bpropCells)
	for id := range expIn {
		expIn[id] = make([]float64, bpropCells*bpropRegion)
		expGin[id] = make([]float64, bpropCells*bpropRegion)
	}
	for id := 0; id < bpropCells; id++ {
		lc, gc := 0, 0
		rc := make([]int, bpropCells)
		for _, op := range ops[id] {
			switch op.kind {
			case 0, 2:
				for i := 0; i < op.n; i++ {
					expIn[op.dst][id*bpropRegion+rc[op.dst]+i] = outVal(id, lc+i)
				}
				lc += op.n
				rc[op.dst] += op.n
			case 1:
				for i := 0; i < op.n; i++ {
					expIn[op.dst][id*bpropRegion+rc[op.dst]+i] = outVal(id, lc+2*i)
				}
				lc += 2 * op.n
				rc[op.dst] += op.n
			case 3:
				for i := 0; i < op.n; i++ {
					expGin[id][gc+i] = outVal(op.dst, op.slot+i)
				}
				gc += op.n
			}
		}
	}
	return expIn, expGin
}

// bpropSnapshot is the user-visible outcome of one run.
type bpropSnapshot struct {
	In, Gin     [][]float64
	RecvFlags   []int64
	GetFlags    []int64
}

// bpropRun executes the workload in one issue mode (0 = singles,
// 1 = CommandList, 2 = coalescing CommandList) and returns the
// snapshot plus the machine's issued-command totals.
func bpropRun(t *testing.T, variant string, mode int, ops [][]bpropOp, flagsInto, getsBy []int) (bpropSnapshot, Metrics) {
	t.Helper()
	opts := []Option{WithGrid(2, 2), WithObserve()}
	switch variant {
	case "sanitize":
		opts = append(opts, WithSanitize())
	case "fault":
		plan, err := ParseFaultPlan("drop=0.04,dup=0.03,seed=11")
		if err != nil {
			t.Fatal(err)
		}
		opts = append(opts, WithFault(plan))
	}
	m, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	outS := make([]*Segment, bpropCells)
	outD := make([][]float64, bpropCells)
	inS := make([]*Segment, bpropCells)
	inD := make([][]float64, bpropCells)
	ginS := make([]*Segment, bpropCells)
	ginD := make([][]float64, bpropCells)
	recvFlags := make([]FlagID, bpropCells)
	getFlags := make([]FlagID, bpropCells)
	for id := 0; id < bpropCells; id++ {
		c := m.Cell(CellID(id))
		if outS[id], outD[id], err = c.AllocFloat64("out", bpropOutN); err != nil {
			t.Fatal(err)
		}
		if inS[id], inD[id], err = c.AllocFloat64("in", bpropCells*bpropRegion); err != nil {
			t.Fatal(err)
		}
		if ginS[id], ginD[id], err = c.AllocFloat64("gin", bpropCells*bpropRegion); err != nil {
			t.Fatal(err)
		}
		recvFlags[id] = c.Flags.Alloc()
		getFlags[id] = c.Flags.Alloc()
	}

	err = m.Run(func(c *Cell) error {
		id := int(c.ID())
		comm := NewComm(c)
		for j := range outD[id] {
			outD[id][j] = float64(id*10000 + j)
		}
		c.HWBarrier() // every out buffer initialized before any GET reads it
		var b *CommandList
		switch mode {
		case 1:
			b = comm.Batch()
		case 2:
			b = comm.Batch().Coalesce()
		}
		lc, gc := 0, 0
		rc := make([]int, bpropCells)
		for _, op := range ops[id] {
			switch op.kind {
			case 0, 2:
				tr := Transfer{
					To:     CellID(op.dst),
					Remote: inS[op.dst].Base() + Addr((id*bpropRegion+rc[op.dst])*8),
					Local:  outS[id].Base() + Addr(lc*8),
					Size:   int64(op.n) * 8,
				}
				if op.kind == 0 {
					tr.Ack = true
				} else {
					tr.RecvFlag = recvFlags[op.dst]
				}
				if b != nil {
					b.Put(tr)
				} else if err := comm.Put(tr); err != nil {
					return err
				}
				lc += op.n
				rc[op.dst] += op.n
			case 1:
				tr := Transfer{
					To:     CellID(op.dst),
					Remote: inS[op.dst].Base() + Addr((id*bpropRegion+rc[op.dst])*8),
					Local:  outS[id].Base() + Addr(lc*8),
					Ack:    true,
				}
				sp := Stride{ItemSize: 8, Count: int64(op.n), Skip: 8}
				if b != nil {
					b.PutStride(tr, sp, Contiguous(int64(op.n)*8))
				} else if err := comm.PutStride(tr.To, tr.Remote, tr.Local,
					NoFlag, NoFlag, true, sp, Contiguous(int64(op.n)*8)); err != nil {
					return err
				}
				lc += 2 * op.n
				rc[op.dst] += op.n
			case 3:
				tr := Transfer{
					To:       CellID(op.dst),
					Remote:   outS[op.dst].Base() + Addr(op.slot*8),
					Local:    ginS[id].Base() + Addr(gc*8),
					Size:     int64(op.n) * 8,
					RecvFlag: getFlags[id],
				}
				if b != nil {
					b.Get(tr)
				} else if err := comm.Get(tr); err != nil {
					return err
				}
				gc += op.n
			}
		}
		if b != nil {
			if err := b.Commit(); err != nil {
				return err
			}
		}
		comm.AckWait()
		if flagsInto[id] > 0 {
			comm.WaitFlag(recvFlags[id], int64(flagsInto[id]))
		}
		if getsBy[id] > 0 {
			comm.WaitFlag(getFlags[id], int64(getsBy[id]))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SanitizeErr(); err != nil {
		t.Fatal(err)
	}
	if err := m.FaultErr(); err != nil {
		t.Fatal(err)
	}

	snap := bpropSnapshot{
		In:        make([][]float64, bpropCells),
		Gin:       make([][]float64, bpropCells),
		RecvFlags: make([]int64, bpropCells),
		GetFlags:  make([]int64, bpropCells),
	}
	for id := 0; id < bpropCells; id++ {
		snap.In[id] = append([]float64(nil), inD[id]...)
		snap.Gin[id] = append([]float64(nil), ginD[id]...)
		snap.RecvFlags[id] = m.Cell(CellID(id)).Flags.Load(recvFlags[id])
		snap.GetFlags[id] = m.Cell(CellID(id)).Flags.Load(getFlags[id])
	}
	return snap, m.Metrics()
}

// TestBatchMatchesSingleIssue is the batching soundness property: for
// the same workload, batch and coalesced-batch issue are
// indistinguishable from single issue in memory contents and user
// flag counts — while coalescing provably shrinks the command stream.
func TestBatchMatchesSingleIssue(t *testing.T) {
	ops, flagsInto, getsBy := bpropWorkload(bpropSeed)
	expIn, expGin := bpropExpect(ops)
	for _, variant := range []string{"plain", "sanitize", "fault"} {
		t.Run(variant, func(t *testing.T) {
			single, ms := bpropRun(t, variant, 0, ops, flagsInto, getsBy)
			batch, _ := bpropRun(t, variant, 1, ops, flagsInto, getsBy)
			coal, mc := bpropRun(t, variant, 2, ops, flagsInto, getsBy)

			for id := 0; id < bpropCells; id++ {
				if !reflect.DeepEqual(single.In[id], expIn[id]) {
					t.Fatalf("cell %d: single-issue in-buffer diverges from the host replay", id)
				}
				if !reflect.DeepEqual(single.Gin[id], expGin[id]) {
					t.Fatalf("cell %d: single-issue gin-buffer diverges from the host replay", id)
				}
				if single.RecvFlags[id] != int64(flagsInto[id]) {
					t.Fatalf("cell %d: recv flag = %d, want %d", id, single.RecvFlags[id], flagsInto[id])
				}
				if single.GetFlags[id] != int64(getsBy[id]) {
					t.Fatalf("cell %d: get flag = %d, want %d", id, single.GetFlags[id], getsBy[id])
				}
			}
			for name, snap := range map[string]bpropSnapshot{"batch": batch, "coalesce": coal} {
				if !reflect.DeepEqual(snap, single) {
					t.Fatalf("%s run is not bit-identical to single issue", name)
				}
			}

			ts, tc := ms.Totals(), mc.Totals()
			singleCmds := ts.Put + ts.PutS + ts.AckGet
			coalCmds := tc.Put + tc.PutS + tc.AckGet
			if coalCmds >= singleCmds {
				t.Fatalf("coalescing did not shrink the command stream: %d vs %d", coalCmds, singleCmds)
			}
			t.Logf("%s: commands single=%d (PUT %d, PUTS %d, ackGET %d) coalesced=%d (PUT %d, PUTS %d, ackGET %d)",
				variant, singleCmds, ts.Put, ts.PutS, ts.AckGet, coalCmds, tc.Put, tc.PutS, tc.AckGet)
		})
	}
}
