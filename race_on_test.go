//go:build race

package ap1000plus

// raceDetectorEnabled reports whether this test binary was built with
// the Go race detector. Under -race, sync.Pool randomly drops items
// on Put, so the zero-allocation guarantee of the payload pool cannot
// be asserted; the zero-alloc guard skips itself there.
const raceDetectorEnabled = true
